"""The standard VNF catalog and the service chains built from it.

The catalog mirrors the VNF mixes commonly used in NFV placement evaluations:
firewall, NAT, IDS/IPS, load balancer, WAN optimizer, video transcoder and a
lightweight traffic monitor.  Service chain templates assemble these into the
service classes the workload generator draws from (web service, VoIP, video
streaming, IoT analytics, AR/VR offloading).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple

from repro.nfv.vnf import VNFType, make_vnf_type


class UnknownVNFTypeError(KeyError):
    """Raised when a chain references a VNF type not in the catalog."""


class VNFCatalog:
    """A registry of VNF types keyed by name."""

    def __init__(self, types: Sequence[VNFType] = ()) -> None:
        self._types: Dict[str, VNFType] = {}
        for vnf_type in types:
            self.register(vnf_type)

    def register(self, vnf_type: VNFType) -> None:
        """Add a type to the catalog; names must be unique."""
        if vnf_type.name in self._types:
            raise ValueError(f"VNF type {vnf_type.name!r} already registered")
        self._types[vnf_type.name] = vnf_type

    def get(self, name: str) -> VNFType:
        """Look up a type by name."""
        try:
            return self._types[name]
        except KeyError as exc:
            raise UnknownVNFTypeError(
                f"unknown VNF type {name!r}; known types: {sorted(self._types)}"
            ) from exc

    def __contains__(self, name: str) -> bool:
        return name in self._types

    def __len__(self) -> int:
        return len(self._types)

    @property
    def names(self) -> List[str]:
        """All registered type names in registration order."""
        return list(self._types.keys())

    def types(self) -> List[VNFType]:
        """All registered types in registration order."""
        return list(self._types.values())

    def index_of(self, name: str) -> int:
        """Stable index of a type name (used for one-hot state encoding)."""
        try:
            return self.names.index(name)
        except ValueError as exc:
            raise UnknownVNFTypeError(f"unknown VNF type {name!r}") from exc


def default_catalog() -> VNFCatalog:
    """The standard seven-type catalog used by all reference experiments."""
    return VNFCatalog(
        [
            make_vnf_type(
                "firewall",
                cpu=2.0,
                memory=2.0,
                storage=4.0,
                cpu_per_mbps=0.004,
                processing_delay_ms=0.6,
                license_cost=1.0,
            ),
            make_vnf_type(
                "nat",
                cpu=1.0,
                memory=1.0,
                storage=2.0,
                cpu_per_mbps=0.002,
                processing_delay_ms=0.3,
                license_cost=0.5,
            ),
            make_vnf_type(
                "ids",
                cpu=4.0,
                memory=6.0,
                storage=16.0,
                cpu_per_mbps=0.010,
                memory_per_mbps=0.004,
                processing_delay_ms=1.2,
                license_cost=2.0,
            ),
            make_vnf_type(
                "load_balancer",
                cpu=1.5,
                memory=2.0,
                storage=2.0,
                cpu_per_mbps=0.003,
                processing_delay_ms=0.4,
                license_cost=0.8,
            ),
            make_vnf_type(
                "wan_optimizer",
                cpu=3.0,
                memory=4.0,
                storage=32.0,
                cpu_per_mbps=0.006,
                memory_per_mbps=0.002,
                processing_delay_ms=0.9,
                license_cost=1.5,
            ),
            make_vnf_type(
                "transcoder",
                cpu=6.0,
                memory=8.0,
                storage=8.0,
                cpu_per_mbps=0.015,
                memory_per_mbps=0.006,
                processing_delay_ms=2.0,
                license_cost=2.5,
            ),
            make_vnf_type(
                "monitor",
                cpu=0.5,
                memory=1.0,
                storage=8.0,
                cpu_per_mbps=0.001,
                processing_delay_ms=0.2,
                license_cost=0.2,
            ),
        ]
    )


@dataclass(frozen=True)
class ChainTemplate:
    """A named service class: an ordered VNF sequence plus traffic parameters.

    ``bandwidth_range`` and ``latency_sla_range`` bound the values the
    workload generator samples uniformly for each request; ``revenue_per_mbps``
    scales the reward/revenue of accepting a request of this class.
    """

    name: str
    vnf_sequence: Tuple[str, ...]
    bandwidth_range: Tuple[float, float]
    latency_sla_range_ms: Tuple[float, float]
    mean_holding_time: float
    revenue_per_mbps: float = 1.0
    weight: float = 1.0

    def __post_init__(self) -> None:
        if not self.vnf_sequence:
            raise ValueError(f"chain template {self.name!r} must contain >= 1 VNF")
        lo, hi = self.bandwidth_range
        if not 0 < lo <= hi:
            raise ValueError(f"invalid bandwidth_range {self.bandwidth_range}")
        lo, hi = self.latency_sla_range_ms
        if not 0 < lo <= hi:
            raise ValueError(f"invalid latency_sla_range_ms {self.latency_sla_range_ms}")
        if self.mean_holding_time <= 0:
            raise ValueError("mean_holding_time must be positive")
        if self.weight <= 0:
            raise ValueError("weight must be positive")

    @property
    def length(self) -> int:
        """Number of VNFs in the chain."""
        return len(self.vnf_sequence)


def default_chain_templates() -> List[ChainTemplate]:
    """The five service classes used by the reference workload mix.

    The classes deliberately span the latency-sensitivity spectrum: AR/VR and
    VoIP have tight SLAs that effectively force edge placement, while web and
    IoT analytics tolerate the cloud round trip.
    """
    return [
        ChainTemplate(
            name="web_service",
            vnf_sequence=("firewall", "nat", "load_balancer"),
            bandwidth_range=(20.0, 120.0),
            latency_sla_range_ms=(40.0, 80.0),
            mean_holding_time=60.0,
            revenue_per_mbps=1.0,
            weight=0.30,
        ),
        ChainTemplate(
            name="voip",
            vnf_sequence=("nat", "firewall", "monitor"),
            bandwidth_range=(5.0, 30.0),
            latency_sla_range_ms=(15.0, 30.0),
            mean_holding_time=120.0,
            revenue_per_mbps=2.0,
            weight=0.20,
        ),
        ChainTemplate(
            name="video_streaming",
            vnf_sequence=("firewall", "transcoder", "wan_optimizer"),
            bandwidth_range=(80.0, 400.0),
            latency_sla_range_ms=(50.0, 100.0),
            mean_holding_time=180.0,
            revenue_per_mbps=0.8,
            weight=0.25,
        ),
        ChainTemplate(
            name="iot_analytics",
            vnf_sequence=("nat", "ids", "monitor"),
            bandwidth_range=(10.0, 60.0),
            latency_sla_range_ms=(60.0, 150.0),
            mean_holding_time=300.0,
            revenue_per_mbps=1.2,
            weight=0.15,
        ),
        ChainTemplate(
            name="ar_vr_offload",
            vnf_sequence=("firewall", "load_balancer", "transcoder"),
            bandwidth_range=(50.0, 200.0),
            latency_sla_range_ms=(10.0, 25.0),
            mean_holding_time=45.0,
            revenue_per_mbps=3.0,
            weight=0.10,
        ),
    ]


def validate_templates(
    templates: Sequence[ChainTemplate], catalog: VNFCatalog
) -> None:
    """Ensure every VNF referenced by the templates exists in the catalog."""
    for template in templates:
        for vnf_name in template.vnf_sequence:
            if vnf_name not in catalog:
                raise UnknownVNFTypeError(
                    f"chain template {template.name!r} references unknown VNF "
                    f"type {vnf_name!r}"
                )
