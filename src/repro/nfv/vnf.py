"""Virtual network function (VNF) types and instances.

A :class:`VNFType` describes a class of network function (firewall, NAT,
IDS, ...) in terms of the resources an instance consumes, the per-packet
processing delay it adds, and how its resource demand scales with the traffic
it serves.  A :class:`VNFInstance` is one deployment of a type on a specific
substrate node, serving a specific request.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Dict, Optional

import numpy as np

from repro.substrate.resources import ResourceVector
from repro.utils.validation import check_non_negative, check_positive


@dataclass(frozen=True)
class VNFType:
    """A class of virtual network function.

    Parameters
    ----------
    name:
        Unique type name (e.g. ``"firewall"``).
    base_demand:
        Resources consumed by an instance independent of traffic (the VM /
        container footprint).
    demand_per_mbps:
        Additional resources consumed per Mbps of traffic served.
    processing_delay_ms:
        Latency added to every packet traversing the function.
    license_cost:
        One-off cost charged per instantiation (models software licensing /
        image-transfer cost).
    """

    name: str
    base_demand: ResourceVector
    demand_per_mbps: ResourceVector = field(
        default_factory=ResourceVector.zero
    )
    processing_delay_ms: float = 0.5
    license_cost: float = 0.0

    def __post_init__(self) -> None:
        if not self.name:
            raise ValueError("VNFType.name must be a non-empty string")
        check_non_negative(self.processing_delay_ms, "processing_delay_ms")
        check_non_negative(self.license_cost, "license_cost")

    def demand_for(self, bandwidth_mbps: float) -> ResourceVector:
        """Total resource demand of one instance serving ``bandwidth_mbps``."""
        check_non_negative(bandwidth_mbps, "bandwidth_mbps")
        return self.base_demand + self.demand_per_mbps * bandwidth_mbps

    def demand_array_for(self, bandwidth_mbps: float) -> np.ndarray:
        """:meth:`demand_for` as a canonical-order array, memoized per bandwidth.

        The encoder, action mask and feasibility checks all query the demand
        of the same (type, bandwidth) pair several times per decision; the
        memo avoids rebuilding vectors in the hot path.  Callers must treat
        the returned array as read-only.
        """
        cache: Dict[float, np.ndarray] = self.__dict__.setdefault(
            "_demand_array_cache", {}
        )
        cached = cache.get(bandwidth_mbps)
        if cached is None:
            check_non_negative(bandwidth_mbps, "bandwidth_mbps")
            # Pure array math on the miss path: elementwise identical to
            # demand_for(...).as_array() (same base + per_mbps * bw per
            # dimension) without building two ResourceVector objects.
            cached = (
                self.base_demand.as_array()
                + self.demand_per_mbps.as_array() * bandwidth_mbps
            )
            if len(cache) > 4096:  # bound per-type memory for adversarial traces
                cache.clear()
            cache[bandwidth_mbps] = cached
        return cached

    def __str__(self) -> str:
        return self.name


_instance_counter = itertools.count()


def _next_instance_id() -> int:
    return next(_instance_counter)


@dataclass
class VNFInstance:
    """One deployment of a VNF type on a substrate node.

    Instances are created by placement policies and committed to the
    substrate by :class:`~repro.nfv.placement.Placement`.  The
    ``allocation_handle`` ties the instance to the node-side bookkeeping so
    releases are exact.
    """

    vnf_type: VNFType
    node_id: int
    bandwidth_mbps: float
    request_id: Optional[int] = None
    instance_id: int = field(default_factory=_next_instance_id)

    def __post_init__(self) -> None:
        check_non_negative(self.bandwidth_mbps, "bandwidth_mbps")

    @property
    def demand(self) -> ResourceVector:
        """Resource demand of this instance at its provisioned bandwidth."""
        cached = self.__dict__.get("_demand")
        if cached is None:
            cached = self.vnf_type.demand_for(self.bandwidth_mbps)
            self.__dict__["_demand"] = cached
        return cached

    @property
    def demand_array(self) -> np.ndarray:
        """:attr:`demand` as a canonical-order array (read-only by convention)."""
        return self.vnf_type.demand_array_for(self.bandwidth_mbps)

    @property
    def allocation_handle(self) -> str:
        """Unique handle used for node allocations backing this instance."""
        return f"vnf:{self.instance_id}"

    @property
    def processing_delay_ms(self) -> float:
        """Packet processing delay contributed by this instance."""
        return self.vnf_type.processing_delay_ms

    def snapshot(self) -> Dict[str, object]:
        """A JSON-friendly summary of the instance."""
        return {
            "instance_id": self.instance_id,
            "type": self.vnf_type.name,
            "node_id": self.node_id,
            "bandwidth_mbps": self.bandwidth_mbps,
            "request_id": self.request_id,
            "demand": self.demand.as_dict(),
        }


def make_vnf_type(
    name: str,
    cpu: float,
    memory: float,
    storage: float = 1.0,
    cpu_per_mbps: float = 0.0,
    memory_per_mbps: float = 0.0,
    processing_delay_ms: float = 0.5,
    license_cost: float = 0.0,
) -> VNFType:
    """Convenience constructor used by the catalog and by tests."""
    check_positive(cpu, "cpu")
    check_positive(memory, "memory")
    return VNFType(
        name=name,
        base_demand=ResourceVector(cpu, memory, storage),
        demand_per_mbps=ResourceVector(cpu_per_mbps, memory_per_mbps, 0.0),
        processing_delay_ms=processing_delay_ms,
        license_cost=license_cost,
    )
