"""Service function chains (SFCs) and online SFC requests."""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.nfv.catalog import ChainTemplate, VNFCatalog
from repro.nfv.sla import ServiceLevelAgreement
from repro.nfv.vnf import VNFType
from repro.utils.validation import check_non_negative, check_positive


@dataclass(frozen=True)
class ServiceFunctionChain:
    """An ordered sequence of VNF types with a bandwidth demand.

    The chain is the *logical* object; a
    :class:`~repro.nfv.placement.Placement` maps it onto substrate nodes.
    """

    vnf_types: Tuple[VNFType, ...]
    bandwidth_mbps: float
    service_class: str = "generic"

    def __post_init__(self) -> None:
        if not self.vnf_types:
            raise ValueError("a service function chain must contain >= 1 VNF")
        check_positive(self.bandwidth_mbps, "bandwidth_mbps")

    @property
    def length(self) -> int:
        """Number of VNFs in the chain."""
        return len(self.vnf_types)

    @property
    def vnf_names(self) -> Tuple[str, ...]:
        """Names of the chained VNF types, in order."""
        return tuple(vnf.name for vnf in self.vnf_types)

    def total_processing_delay_ms(self) -> float:
        """Sum of per-VNF processing delays (placement independent)."""
        return sum(vnf.processing_delay_ms for vnf in self.vnf_types)

    def total_base_demand(self):
        """Aggregate resource demand of the chain at its bandwidth."""
        from repro.substrate.resources import aggregate

        return aggregate(vnf.demand_for(self.bandwidth_mbps) for vnf in self.vnf_types)

    def vnf_at(self, index: int) -> VNFType:
        """The VNF type at position ``index`` (0-based)."""
        return self.vnf_types[index]

    @classmethod
    def from_template(
        cls,
        template: ChainTemplate,
        catalog: VNFCatalog,
        bandwidth_mbps: float,
    ) -> "ServiceFunctionChain":
        """Instantiate a chain from a template and a sampled bandwidth."""
        return cls(
            vnf_types=tuple(catalog.get(name) for name in template.vnf_sequence),
            bandwidth_mbps=bandwidth_mbps,
            service_class=template.name,
        )


_request_counter = itertools.count()


def reset_request_counter() -> None:
    """Reset the global request id counter (used by tests for determinism)."""
    global _request_counter
    _request_counter = itertools.count()


@dataclass
class SFCRequest:
    """An online request for a service function chain deployment.

    Parameters
    ----------
    chain:
        The requested logical chain.
    source_node_id:
        Substrate node closest to the requesting user (ingress point).
    sla:
        Latency/availability contract.
    arrival_time:
        Simulation time at which the request arrives.
    holding_time:
        Time the service remains active once accepted.
    destination_node_id:
        Optional egress node; ``None`` means traffic terminates at the last
        VNF (the common edge-offloading pattern).
    """

    chain: ServiceFunctionChain
    source_node_id: int
    sla: ServiceLevelAgreement
    arrival_time: float = 0.0
    holding_time: float = 60.0
    destination_node_id: Optional[int] = None
    request_id: int = field(default_factory=lambda: next(_request_counter))

    def __post_init__(self) -> None:
        check_non_negative(self.arrival_time, "arrival_time")
        check_positive(self.holding_time, "holding_time")

    @property
    def departure_time(self) -> float:
        """Simulation time at which an accepted request releases resources."""
        return self.arrival_time + self.holding_time

    @property
    def bandwidth_mbps(self) -> float:
        """Bandwidth demanded by the chain."""
        return self.chain.bandwidth_mbps

    @property
    def num_vnfs(self) -> int:
        """Number of VNFs to place."""
        return self.chain.length

    @property
    def service_class(self) -> str:
        """The service class the request belongs to."""
        return self.chain.service_class

    def revenue(self, revenue_per_mbps: float = 1.0) -> float:
        """Revenue earned by accepting this request for its full holding time."""
        return revenue_per_mbps * self.bandwidth_mbps * self.holding_time / 100.0

    def snapshot(self) -> Dict[str, object]:
        """A JSON-friendly summary of the request."""
        return {
            "request_id": self.request_id,
            "service_class": self.service_class,
            "vnfs": list(self.chain.vnf_names),
            "bandwidth_mbps": self.bandwidth_mbps,
            "source_node_id": self.source_node_id,
            "destination_node_id": self.destination_node_id,
            "arrival_time": self.arrival_time,
            "holding_time": self.holding_time,
            "sla": self.sla.snapshot(),
        }


def chain_summary(requests: Sequence[SFCRequest]) -> Dict[str, int]:
    """Count requests per service class (used by workload sanity checks)."""
    counts: Dict[str, int] = {}
    for request in requests:
        counts[request.service_class] = counts.get(request.service_class, 0) + 1
    return counts
