"""VNF, service-chain, SLA and placement models."""

from repro.nfv.catalog import (
    ChainTemplate,
    UnknownVNFTypeError,
    VNFCatalog,
    default_catalog,
    default_chain_templates,
    validate_templates,
)
from repro.nfv.placement import (
    Placement,
    PlacementError,
    PlacementSegment,
)
from repro.nfv.sfc import (
    SFCRequest,
    ServiceFunctionChain,
    chain_summary,
    reset_request_counter,
)
from repro.nfv.sla import (
    DEFAULT_NODE_AVAILABILITY,
    ServiceLevelAgreement,
    placement_availability,
)
from repro.nfv.vnf import VNFInstance, VNFType, make_vnf_type

__all__ = [
    "ChainTemplate",
    "UnknownVNFTypeError",
    "VNFCatalog",
    "default_catalog",
    "default_chain_templates",
    "validate_templates",
    "Placement",
    "PlacementError",
    "PlacementSegment",
    "SFCRequest",
    "ServiceFunctionChain",
    "chain_summary",
    "reset_request_counter",
    "DEFAULT_NODE_AVAILABILITY",
    "ServiceLevelAgreement",
    "placement_availability",
    "VNFInstance",
    "VNFType",
    "make_vnf_type",
]
