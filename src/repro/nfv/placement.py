"""Chain-to-substrate placements (embeddings).

A :class:`Placement` maps each VNF of an :class:`~repro.nfv.sfc.SFCRequest`
to a substrate node and routes traffic source → VNF₁ → ... → VNFₙ
(→ destination) over latency-shortest paths.  It knows how to

* check feasibility against current node and link capacities,
* compute its end-to-end latency, operational cost and availability, and
* atomically commit to / release from a :class:`SubstrateNetwork`.

Placement construction is cheap and side-effect free; only
:meth:`Placement.commit` mutates the substrate.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.nfv.sfc import SFCRequest
from repro.nfv.sla import placement_availability
from repro.nfv.vnf import VNFInstance
from repro.substrate.link import InsufficientBandwidthError
from repro.substrate.network import NoRouteError, PathInfo, SubstrateNetwork
from repro.substrate.node import InsufficientCapacityError


class PlacementError(RuntimeError):
    """Raised when committing an infeasible placement."""


@dataclass
class PlacementSegment:
    """One routed hop of the service path (between consecutive anchors)."""

    path: PathInfo

    @property
    def latency_ms(self) -> float:
        """Latency of this segment."""
        return self.path.latency_ms


@dataclass
class Placement:
    """A complete mapping of one SFC request onto the substrate.

    Parameters
    ----------
    request:
        The request being embedded.
    node_assignment:
        One substrate node id per VNF of the chain, in chain order.
    """

    request: SFCRequest
    node_assignment: Tuple[int, ...]
    _segments: List[PlacementSegment] = field(default_factory=list, repr=False)
    _instances: List[VNFInstance] = field(default_factory=list, repr=False)
    _committed: bool = field(default=False, repr=False)

    def __post_init__(self) -> None:
        self.node_assignment = tuple(self.node_assignment)
        if len(self.node_assignment) != self.request.num_vnfs:
            raise ValueError(
                f"placement assigns {len(self.node_assignment)} nodes but the "
                f"chain has {self.request.num_vnfs} VNFs"
            )

    # ------------------------------------------------------------------ #
    # Construction helpers
    # ------------------------------------------------------------------ #
    @classmethod
    def build(
        cls,
        request: SFCRequest,
        node_assignment: Sequence[int],
        network: SubstrateNetwork,
    ) -> "Placement":
        """Create a placement and route its service path on ``network``.

        Raises :class:`~repro.substrate.network.NoRouteError` when any pair of
        consecutive anchors is disconnected.
        """
        placement = cls(request=request, node_assignment=tuple(node_assignment))
        placement._route(network)
        placement._materialize_instances()
        return placement

    def _anchor_sequence(self) -> List[int]:
        """The node sequence traffic traverses: source, VNF hosts, destination."""
        anchors = [self.request.source_node_id, *self.node_assignment]
        if self.request.destination_node_id is not None:
            anchors.append(self.request.destination_node_id)
        return anchors

    def _route(self, network: SubstrateNetwork) -> None:
        anchors = self._anchor_sequence()
        segments: List[PlacementSegment] = []
        for start, end in zip(anchors[:-1], anchors[1:]):
            path = network.shortest_path(start, end)
            segments.append(PlacementSegment(path=path))
        self._segments = segments

    def _materialize_instances(self) -> None:
        self._instances = [
            VNFInstance(
                vnf_type=self.request.chain.vnf_at(index),
                node_id=node_id,
                bandwidth_mbps=self.request.bandwidth_mbps,
                request_id=self.request.request_id,
            )
            for index, node_id in enumerate(self.node_assignment)
        ]

    # ------------------------------------------------------------------ #
    # Derived quantities
    # ------------------------------------------------------------------ #
    @property
    def instances(self) -> List[VNFInstance]:
        """The VNF instances this placement creates."""
        return list(self._instances)

    @property
    def segments(self) -> List[PlacementSegment]:
        """The routed path segments between consecutive anchors."""
        return list(self._segments)

    @property
    def is_committed(self) -> bool:
        """True after a successful :meth:`commit` (until :meth:`release`)."""
        return self._committed

    def propagation_latency_ms(self) -> float:
        """Total routed propagation latency across all segments."""
        return sum(segment.latency_ms for segment in self._segments)

    def processing_latency_ms(self) -> float:
        """Total VNF processing latency (placement independent)."""
        return self.request.chain.total_processing_delay_ms()

    def end_to_end_latency_ms(self) -> float:
        """Propagation plus processing latency of the placed chain."""
        return self.propagation_latency_ms() + self.processing_latency_ms()

    def satisfies_sla(self, network: Optional[SubstrateNetwork] = None) -> bool:
        """True when the end-to-end latency and availability meet the SLA."""
        return self.request.sla.is_satisfied(
            self.end_to_end_latency_ms(), self.availability(network)
        )

    def availability(self, network: Optional[SubstrateNetwork] = None) -> float:
        """Series-system availability estimate over distinct hosting nodes.

        When ``network`` is given the per-node tier (edge vs. cloud) informs
        the per-component availability; without it every node is assumed to
        be edge tier (the conservative choice).
        """
        return placement_availability(self._distinct_node_tiers(network))

    def _distinct_node_tiers(
        self, network: Optional[SubstrateNetwork] = None
    ) -> Dict[int, str]:
        tiers: Dict[int, str] = {}
        for instance in self._instances:
            if network is not None:
                tier = "cloud" if network.node(instance.node_id).is_cloud else "edge"
            else:
                tier = "edge"
            tiers.setdefault(instance.node_id, tier)
        return tiers

    def distinct_nodes(self) -> List[int]:
        """Distinct substrate nodes hosting at least one VNF of the chain."""
        seen: List[int] = []
        for node_id in self.node_assignment:
            if node_id not in seen:
                seen.append(node_id)
        return seen

    def uses_cloud(self, network: SubstrateNetwork) -> bool:
        """True when any VNF of the chain is hosted on a cloud node."""
        return any(network.node(nid).is_cloud for nid in self.node_assignment)

    def edge_fraction(self, network: SubstrateNetwork) -> float:
        """Fraction of the chain's VNFs hosted on edge nodes."""
        if not self.node_assignment:
            return 0.0
        edge_count = sum(
            1 for nid in self.node_assignment if network.node(nid).is_edge
        )
        return edge_count / len(self.node_assignment)

    # ------------------------------------------------------------------ #
    # Cost model
    # ------------------------------------------------------------------ #
    def hosting_cost(self, network: SubstrateNetwork) -> float:
        """Node-resource cost of the placement over the holding time."""
        duration = self.request.holding_time
        cost = 0.0
        for instance in self._instances:
            node = network.node(instance.node_id)
            cost += node.hosting_cost(instance.demand, duration)
            cost += instance.vnf_type.license_cost
        return cost

    def transport_cost(self, network: SubstrateNetwork) -> float:
        """Link-bandwidth cost of the placement over the holding time."""
        duration = self.request.holding_time
        bandwidth = self.request.bandwidth_mbps
        if network.routing == "dense":
            ledger = network.ledger
            per_mbps = sum(
                ledger.path_cost_per_mbps(segment.path.nodes)
                for segment in self._segments
            )
            return bandwidth * per_mbps * duration
        cost = 0.0
        for segment in self._segments:
            for u, v in segment.path.links():
                cost += network.link(u, v).transport_cost(bandwidth, duration)
        return cost

    def total_cost(self, network: SubstrateNetwork) -> float:
        """Hosting plus transport cost of the placement."""
        return self.hosting_cost(network) + self.transport_cost(network)

    # ------------------------------------------------------------------ #
    # Feasibility / commit / release
    # ------------------------------------------------------------------ #
    def _aggregated_node_demand(self) -> Dict[int, List[VNFInstance]]:
        grouped: Dict[int, List[VNFInstance]] = {}
        for instance in self._instances:
            grouped.setdefault(instance.node_id, []).append(instance)
        return grouped

    def is_feasible(self, network: SubstrateNetwork) -> bool:
        """Check node capacity, path bandwidth and SLA without mutating state.

        Node feasibility aggregates the demands of all VNFs of this chain
        colocated on the same node, so a node cannot be "double booked" by a
        single placement.  With dense routing the node and link checks reduce
        to array comparisons against the substrate ledger; the object-by-object
        reference path survives as :meth:`is_feasible_reference`.
        """
        if network.routing != "dense":
            return self.is_feasible_reference(network)
        ledger = network.ledger

        # Per-node aggregated demand (chains are short, the dict stays tiny).
        grouped: Dict[int, np.ndarray] = {}
        for instance in self._instances:
            demand = instance.demand_array
            row = ledger.node_row[instance.node_id]
            if row in grouped:
                grouped[row] = grouped[row] + demand
            else:
                grouped[row] = demand
        if grouped:
            rows = np.fromiter(grouped.keys(), dtype=np.int64, count=len(grouped))
            demands = np.stack(list(grouped.values()))
            free = ledger.node_capacity[rows] - ledger.node_used[rows]
            if not bool(np.all(demands <= free + 1e-9)):
                return False

        # A link shared by several segments must carry each traversal.
        # Accumulating per traversed slot keeps this O(path hops) instead of
        # touching every substrate link.
        bandwidth = self.request.bandwidth_mbps
        traversals: Dict[int, int] = {}
        for segment in self._segments:
            for slot in ledger.path_edge_indices(segment.path.nodes).tolist():
                traversals[slot] = traversals.get(slot, 0) + 1
        link_capacity = ledger.link_capacity
        link_used = ledger.link_used
        for slot, count in traversals.items():
            if count * bandwidth > link_capacity[slot] - link_used[slot] + 1e-9:
                return False
        return self.satisfies_sla(network)

    def is_feasible_reference(self, network: SubstrateNetwork) -> bool:
        """The original object-by-object feasibility check (equivalence tests)."""
        from repro.substrate.resources import aggregate

        for node_id, instances in self._aggregated_node_demand().items():
            demand = aggregate(inst.demand for inst in instances)
            if not network.node(node_id).can_host(demand):
                return False
        bandwidth = self.request.bandwidth_mbps
        # A link shared by several segments must carry each traversal.
        link_load: Dict[Tuple[int, int], float] = {}
        for segment in self._segments:
            for endpoints in segment.path.links():
                link_load[endpoints] = link_load.get(endpoints, 0.0) + bandwidth
        for endpoints, load in link_load.items():
            if not network.link(*endpoints).can_carry(load):
                return False
        return self.satisfies_sla(network)

    def commit(self, network: SubstrateNetwork) -> None:
        """Atomically reserve node resources and path bandwidth.

        On any failure every reservation made so far is rolled back and
        :class:`PlacementError` is raised; the substrate is left unchanged.
        """
        if self._committed:
            raise PlacementError(
                f"placement for request {self.request.request_id} is already committed"
            )
        committed_nodes: List[Tuple[int, str]] = []
        committed_paths: List[Tuple[Tuple[int, ...], str]] = []
        try:
            for instance in self._instances:
                network.allocate_node(
                    instance.node_id, instance.allocation_handle, instance.demand
                )
                committed_nodes.append((instance.node_id, instance.allocation_handle))
            for index, segment in enumerate(self._segments):
                handle = self._segment_handle(index)
                network.allocate_path(
                    segment.path.nodes, handle, self.request.bandwidth_mbps
                )
                committed_paths.append((segment.path.nodes, handle))
        except (InsufficientCapacityError, InsufficientBandwidthError, NoRouteError) as exc:
            for nodes, handle in committed_paths:
                network.release_path(nodes, handle)
            for node_id, handle in committed_nodes:
                network.release_node(node_id, handle)
            raise PlacementError(
                f"placement for request {self.request.request_id} is infeasible: {exc}"
            ) from exc
        self._committed = True

    def release(self, network: SubstrateNetwork) -> None:
        """Free every reservation made by :meth:`commit`."""
        if not self._committed:
            raise PlacementError(
                f"placement for request {self.request.request_id} is not committed"
            )
        for index, segment in enumerate(self._segments):
            network.release_path(segment.path.nodes, self._segment_handle(index))
        for instance in self._instances:
            network.release_node(instance.node_id, instance.allocation_handle)
        self._committed = False

    def _segment_handle(self, index: int) -> str:
        return f"req:{self.request.request_id}:seg:{index}"

    # ------------------------------------------------------------------ #
    # Introspection
    # ------------------------------------------------------------------ #
    def snapshot(self, network: Optional[SubstrateNetwork] = None) -> Dict[str, object]:
        """A JSON-friendly summary; costs included when a network is given."""
        summary: Dict[str, object] = {
            "request_id": self.request.request_id,
            "service_class": self.request.service_class,
            "node_assignment": list(self.node_assignment),
            "end_to_end_latency_ms": self.end_to_end_latency_ms(),
            "propagation_latency_ms": self.propagation_latency_ms(),
            "processing_latency_ms": self.processing_latency_ms(),
            "sla_satisfied": self.satisfies_sla(network),
            "availability": self.availability(network),
            "committed": self._committed,
        }
        if network is not None:
            summary["hosting_cost"] = self.hosting_cost(network)
            summary["transport_cost"] = self.transport_cost(network)
            summary["total_cost"] = self.total_cost(network)
            summary["edge_fraction"] = self.edge_fraction(network)
        return summary
