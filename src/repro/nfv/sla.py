"""Service level agreements for SFC requests.

The model used in the reproduction is latency-centric — the SLA of a request
is primarily a maximum end-to-end latency — with an optional minimum
availability term that penalizes placements concentrating every VNF of a
chain on a single node.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

from repro.utils.validation import check_non_negative, check_positive, check_probability


@dataclass(frozen=True)
class ServiceLevelAgreement:
    """The contract attached to an SFC request.

    Parameters
    ----------
    max_latency_ms:
        End-to-end latency budget (propagation + VNF processing).
    min_availability:
        Minimum availability target in [0, 1].  The placement-level
        availability estimate is a simple series-system product of per-node
        availabilities, so spreading a chain over fewer distinct failure
        domains lowers it.
    violation_penalty:
        Monetary penalty charged when an accepted request later violates the
        SLA (used by the cost metric and the reward function).
    """

    max_latency_ms: float
    min_availability: float = 0.0
    violation_penalty: float = 1.0

    def __post_init__(self) -> None:
        check_positive(self.max_latency_ms, "max_latency_ms")
        check_probability(self.min_availability, "min_availability")
        check_non_negative(self.violation_penalty, "violation_penalty")

    def latency_satisfied(self, latency_ms: float, tol: float = 1e-9) -> bool:
        """True when ``latency_ms`` is within the budget."""
        return latency_ms <= self.max_latency_ms + tol

    def availability_satisfied(self, availability: float) -> bool:
        """True when the placement availability meets the target."""
        return availability + 1e-12 >= self.min_availability

    def is_satisfied(self, latency_ms: float, availability: float = 1.0) -> bool:
        """True when both the latency and availability terms are met."""
        return self.latency_satisfied(latency_ms) and self.availability_satisfied(
            availability
        )

    def latency_headroom_ms(self, latency_ms: float) -> float:
        """Remaining latency budget (negative when violated)."""
        return self.max_latency_ms - latency_ms

    def latency_fraction_used(self, latency_ms: float) -> float:
        """Fraction of the latency budget consumed (can exceed 1.0)."""
        return latency_ms / self.max_latency_ms

    def snapshot(self) -> Dict[str, float]:
        """A JSON-friendly summary of the SLA."""
        return {
            "max_latency_ms": self.max_latency_ms,
            "min_availability": self.min_availability,
            "violation_penalty": self.violation_penalty,
        }


#: Per-node availability figures used by the series-system estimate.  Edge
#: sites are assumed slightly less reliable than a hardened cloud datacenter.
DEFAULT_NODE_AVAILABILITY = {"edge": 0.995, "cloud": 0.9999}


def placement_availability(node_tiers: Dict[int, str]) -> float:
    """Series-system availability of a placement.

    ``node_tiers`` maps each *distinct* node hosting part of the chain to its
    tier ("edge" or "cloud").  Availability multiplies across distinct nodes:
    more distinct nodes means more components that can fail, which is the
    standard series-system assumption for chained functions.
    """
    availability = 1.0
    for tier in node_tiers.values():
        availability *= DEFAULT_NODE_AVAILABILITY.get(tier, 0.99)
    return availability
