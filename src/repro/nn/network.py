"""Multi-layer perceptrons with manual backpropagation.

The :class:`MLP` is the function approximator used by every deep agent in the
library (Q-networks, policy networks, value baselines).  It supports

* batched forward passes over ``(batch, features)`` arrays,
* backpropagation from an arbitrary output gradient,
* a convenience :meth:`fit_batch` for supervised regression steps,
* :meth:`apply_gradient_step` — the fused ``zero_grad → backward → clip →
  optimizer step`` sequence agents run once per minibatch,
* cloning and soft/hard parameter copying (for target networks), and
* save/load to ``.npz`` files.

>>> network = MLP([4, 32, 2], seed=0)
>>> outputs = network(np.zeros((64, 4)))          # (64, 2) batched forward
>>> loss = network.fit_batch(inputs, targets, optimizer=Adam(1e-3))
"""

from __future__ import annotations

from pathlib import Path
from typing import Dict, List, Optional, Sequence, Union

import numpy as np

from repro.nn.layers import DenseLayer
from repro.nn.losses import Loss, MSELoss
from repro.nn.optimizers import Optimizer, ParameterGroup, clip_gradients
from repro.utils.rng import RandomState, new_rng, spawn_rngs


class MLP:
    """A feed-forward network of :class:`DenseLayer` objects.

    Parameters
    ----------
    layer_sizes:
        Widths including input and output, e.g. ``[64, 128, 128, 10]``.
    hidden_activation:
        Activation used by all hidden layers.
    output_activation:
        Activation of the final layer (``identity`` for value heads).
    seed:
        Seed controlling weight initialization.
    """

    def __init__(
        self,
        layer_sizes: Sequence[int],
        hidden_activation: str = "relu",
        output_activation: str = "identity",
        seed: RandomState = None,
    ) -> None:
        if len(layer_sizes) < 2:
            raise ValueError("layer_sizes must contain at least input and output widths")
        if any(size <= 0 for size in layer_sizes):
            raise ValueError(f"all layer sizes must be positive, got {layer_sizes}")
        self.layer_sizes = list(int(s) for s in layer_sizes)
        self.hidden_activation = hidden_activation
        self.output_activation = output_activation

        rngs = spawn_rngs(seed, len(self.layer_sizes) - 1)
        self.layers: List[DenseLayer] = []
        for index in range(len(self.layer_sizes) - 1):
            is_output = index == len(self.layer_sizes) - 2
            self.layers.append(
                DenseLayer(
                    in_features=self.layer_sizes[index],
                    out_features=self.layer_sizes[index + 1],
                    activation=output_activation if is_output else hidden_activation,
                    seed=rngs[index],
                )
            )

    # ------------------------------------------------------------------ #
    # Shapes
    # ------------------------------------------------------------------ #
    @property
    def input_dim(self) -> int:
        """Width of the input layer."""
        return self.layer_sizes[0]

    @property
    def output_dim(self) -> int:
        """Width of the output layer."""
        return self.layer_sizes[-1]

    def parameter_count(self) -> int:
        """Total number of scalar parameters."""
        return sum(layer.parameter_count() for layer in self.layers)

    # ------------------------------------------------------------------ #
    # Forward / backward
    # ------------------------------------------------------------------ #
    def forward(self, inputs: np.ndarray, training: bool = False) -> np.ndarray:
        """Run a batched forward pass; accepts (batch, in) or (in,) inputs."""
        inputs = np.asarray(inputs, dtype=float)
        squeeze = inputs.ndim == 1
        outputs = np.atleast_2d(inputs)
        for layer in self.layers:
            outputs = layer.forward(outputs, training=training)
        return outputs[0] if squeeze else outputs

    __call__ = forward

    def predict(self, inputs: np.ndarray) -> np.ndarray:
        """Inference-mode forward pass (no caches stored)."""
        return self.forward(inputs, training=False)

    def backward(self, output_grad: np.ndarray) -> np.ndarray:
        """Backpropagate an output gradient, returning the input gradient."""
        grad = np.atleast_2d(np.asarray(output_grad, dtype=float))
        for layer in reversed(self.layers):
            grad = layer.backward(grad)
        return grad

    def zero_grad(self) -> None:
        """Reset accumulated gradients in every layer."""
        for layer in self.layers:
            layer.zero_grad()

    def apply_gradient_step(
        self,
        output_grad: np.ndarray,
        optimizer: Optimizer,
        max_grad_norm: Optional[float] = None,
    ) -> None:
        """Backpropagate ``output_grad`` and apply one optimizer step.

        Consolidates the ``zero_grad → backward → clip → step`` sequence every
        agent update performs, so callers that compute their own output
        gradient (policy gradients, masked TD regression) need exactly one
        call after the training-mode forward pass.
        """
        self.zero_grad()
        self.backward(output_grad)
        groups = self.parameter_groups()
        if max_grad_norm is not None:
            clip_gradients(groups, max_grad_norm)
        optimizer.step(groups)

    def parameter_groups(self) -> List[ParameterGroup]:
        """(parameters, gradients) pairs consumed by optimizers."""
        return [(layer.parameters(), layer.gradients()) for layer in self.layers]

    # ------------------------------------------------------------------ #
    # Supervised step
    # ------------------------------------------------------------------ #
    def fit_batch(
        self,
        inputs: np.ndarray,
        targets: np.ndarray,
        optimizer: Optimizer,
        loss: Optional[Loss] = None,
        sample_weights: Optional[np.ndarray] = None,
        target_mask: Optional[np.ndarray] = None,
        max_grad_norm: Optional[float] = 10.0,
    ) -> float:
        """One gradient step of (optionally masked) regression.

        ``target_mask`` restricts the loss to selected output units — the DQN
        update only regresses the Q-value of the action actually taken, so
        the mask is 1 for that action's output and 0 elsewhere.
        """
        loss = loss or MSELoss()
        predictions = self.forward(inputs, training=True)
        predictions = np.atleast_2d(predictions)
        targets = np.atleast_2d(np.asarray(targets, dtype=float))
        if target_mask is not None:
            target_mask = np.atleast_2d(np.asarray(target_mask, dtype=float))
            # Replace masked-out targets by the predictions so they contribute
            # zero error and zero gradient.
            targets = target_mask * targets + (1.0 - target_mask) * predictions
        value, grad = loss.value_and_grad(predictions, targets, sample_weights)
        self.apply_gradient_step(grad, optimizer, max_grad_norm)
        return value

    # ------------------------------------------------------------------ #
    # Parameter copying (target networks)
    # ------------------------------------------------------------------ #
    def get_parameters(self) -> List[Dict[str, np.ndarray]]:
        """Deep copies of all layer parameters."""
        return [
            {name: array.copy() for name, array in layer.parameters().items()}
            for layer in self.layers
        ]

    def set_parameters(self, parameters: List[Dict[str, np.ndarray]]) -> None:
        """Load parameters previously produced by :meth:`get_parameters`."""
        if len(parameters) != len(self.layers):
            raise ValueError(
                f"expected {len(self.layers)} layer parameter dicts, got {len(parameters)}"
            )
        for layer, params in zip(self.layers, parameters):
            layer.set_parameters(params)

    def copy_from(self, other: "MLP", tau: float = 1.0) -> None:
        """Copy (or Polyak-average) parameters from another network.

        ``tau = 1`` performs a hard copy; ``tau < 1`` performs the soft update
        ``θ ← τ θ_other + (1 − τ) θ`` used by soft target networks.
        """
        if not 0.0 < tau <= 1.0:
            raise ValueError(f"tau must be in (0, 1], got {tau}")
        if other.layer_sizes != self.layer_sizes:
            raise ValueError(
                f"architecture mismatch: {other.layer_sizes} vs {self.layer_sizes}"
            )
        for mine, theirs in zip(self.layers, other.layers):
            mine.weights = tau * theirs.weights + (1.0 - tau) * mine.weights
            mine.biases = tau * theirs.biases + (1.0 - tau) * mine.biases

    def clone(self, seed: RandomState = None) -> "MLP":
        """A new network with the same architecture and copied parameters."""
        other = MLP(
            self.layer_sizes,
            hidden_activation=self.hidden_activation,
            output_activation=self.output_activation,
            seed=seed if seed is not None else new_rng(0),
        )
        other.set_parameters(self.get_parameters())
        return other

    # ------------------------------------------------------------------ #
    # Persistence
    # ------------------------------------------------------------------ #
    def save(self, path: Union[str, Path]) -> Path:
        """Persist architecture and parameters to a ``.npz`` file."""
        path = Path(path)
        path.parent.mkdir(parents=True, exist_ok=True)
        arrays: Dict[str, np.ndarray] = {
            "layer_sizes": np.array(self.layer_sizes, dtype=int),
        }
        meta = np.array([self.hidden_activation, self.output_activation])
        arrays["activations"] = meta
        for index, layer in enumerate(self.layers):
            arrays[f"weights_{index}"] = layer.weights
            arrays[f"biases_{index}"] = layer.biases
        np.savez(path, **arrays)
        return path

    @classmethod
    def load(cls, path: Union[str, Path]) -> "MLP":
        """Load a network previously produced by :meth:`save`."""
        data = np.load(Path(path), allow_pickle=False)
        layer_sizes = data["layer_sizes"].tolist()
        hidden_activation, output_activation = (str(x) for x in data["activations"])
        network = cls(
            layer_sizes,
            hidden_activation=hidden_activation,
            output_activation=output_activation,
            seed=0,
        )
        for index, layer in enumerate(network.layers):
            layer.set_parameters(
                {
                    "weights": data[f"weights_{index}"],
                    "biases": data[f"biases_{index}"],
                }
            )
        return network

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"MLP(sizes={self.layer_sizes}, hidden={self.hidden_activation}, "
            f"output={self.output_activation}, params={self.parameter_count()})"
        )
