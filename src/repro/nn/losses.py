"""Loss functions for value regression.

DQN-style agents regress Q-values towards bootstrapped targets; the Huber
loss is the standard choice because it bounds the gradient of outlier TD
errors, which stabilizes early training when targets are still wildly wrong.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import Optional, Tuple

import numpy as np


class Loss(ABC):
    """Interface: scalar loss value plus gradient w.r.t. predictions."""

    name: str = "loss"

    @abstractmethod
    def value_and_grad(
        self,
        predictions: np.ndarray,
        targets: np.ndarray,
        weights: Optional[np.ndarray] = None,
    ) -> Tuple[float, np.ndarray]:
        """Return (mean loss, d loss / d predictions)."""

    def __call__(
        self,
        predictions: np.ndarray,
        targets: np.ndarray,
        weights: Optional[np.ndarray] = None,
    ) -> float:
        return self.value_and_grad(predictions, targets, weights)[0]


def _apply_weights(
    per_sample: np.ndarray, elementwise_grad: np.ndarray, weights: Optional[np.ndarray]
) -> Tuple[float, np.ndarray]:
    """Reduce per-sample losses/gradients, optionally importance weighted.

    ``per_sample`` holds the mean loss over each sample's output elements and
    ``elementwise_grad`` the derivative of each element's loss term.  The
    returned gradient is exactly ``d(mean loss) / d(predictions)`` so that
    numerical gradient checks pass.
    """
    total_elements = max(1, elementwise_grad.size)
    if weights is None:
        return float(np.mean(per_sample)), elementwise_grad / total_elements
    weights = np.asarray(weights, dtype=float).reshape(per_sample.shape)
    loss = float(np.mean(weights * per_sample))
    row_weights = weights.reshape(
        elementwise_grad.shape[0], *([1] * (elementwise_grad.ndim - 1))
    )
    return loss, (row_weights * elementwise_grad) / total_elements


class MSELoss(Loss):
    """Mean squared error."""

    name = "mse"

    def value_and_grad(
        self,
        predictions: np.ndarray,
        targets: np.ndarray,
        weights: Optional[np.ndarray] = None,
    ) -> Tuple[float, np.ndarray]:
        predictions = np.asarray(predictions, dtype=float)
        targets = np.asarray(targets, dtype=float)
        diff = predictions - targets
        per_sample = np.mean(diff.reshape(diff.shape[0], -1) ** 2, axis=1)
        grad = 2.0 * diff
        return _apply_weights(per_sample, grad, weights)


class HuberLoss(Loss):
    """Huber (smooth L1) loss with threshold ``delta``."""

    name = "huber"

    def __init__(self, delta: float = 1.0) -> None:
        if delta <= 0:
            raise ValueError(f"delta must be positive, got {delta}")
        self.delta = delta

    def value_and_grad(
        self,
        predictions: np.ndarray,
        targets: np.ndarray,
        weights: Optional[np.ndarray] = None,
    ) -> Tuple[float, np.ndarray]:
        predictions = np.asarray(predictions, dtype=float)
        targets = np.asarray(targets, dtype=float)
        diff = predictions - targets
        abs_diff = np.abs(diff)
        quadratic = np.minimum(abs_diff, self.delta)
        linear = abs_diff - quadratic
        elementwise = 0.5 * quadratic**2 + self.delta * linear
        per_sample = np.mean(elementwise.reshape(diff.shape[0], -1), axis=1)
        grad = np.clip(diff, -self.delta, self.delta)
        return _apply_weights(per_sample, grad, weights)


def get_loss(name: str, **kwargs) -> Loss:
    """Look up a loss by name (``mse`` or ``huber``)."""
    name = name.lower()
    if name == "mse":
        return MSELoss()
    if name == "huber":
        return HuberLoss(**kwargs)
    raise ValueError(f"unknown loss {name!r}; available: ['mse', 'huber']")
