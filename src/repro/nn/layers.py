"""Dense layers with manual backpropagation.

The layer stores its parameters and, after a forward pass in training mode,
the cached inputs/pre-activations needed to compute gradients.  Parameters
and gradients are exposed as dictionaries so optimizers can treat networks
generically.
"""

from __future__ import annotations

from typing import Dict, Optional

import numpy as np

from repro.nn.activations import Activation, Identity, get_activation
from repro.utils.rng import RandomState, new_rng


class DenseLayer:
    """A fully connected layer ``y = activation(x W + b)``.

    Parameters
    ----------
    in_features, out_features:
        Input and output widths.
    activation:
        An :class:`Activation` instance, an activation name, or ``None``
        for identity.
    seed:
        Seed for weight initialization (He-uniform for ReLU-family, Xavier
        otherwise).
    """

    def __init__(
        self,
        in_features: int,
        out_features: int,
        activation: Optional[object] = "relu",
        seed: RandomState = None,
    ) -> None:
        if in_features <= 0 or out_features <= 0:
            raise ValueError(
                f"layer dimensions must be positive, got ({in_features}, {out_features})"
            )
        self.in_features = in_features
        self.out_features = out_features
        if activation is None:
            self.activation: Activation = Identity()
        elif isinstance(activation, Activation):
            self.activation = activation
        else:
            self.activation = get_activation(str(activation))

        rng = new_rng(seed)
        if self.activation.name in ("relu", "leaky_relu"):
            scale = np.sqrt(2.0 / in_features)
        else:
            scale = np.sqrt(1.0 / in_features)
        self.weights = rng.normal(0.0, scale, size=(in_features, out_features))
        self.biases = np.zeros(out_features)

        self._cached_input: Optional[np.ndarray] = None
        self._cached_pre_activation: Optional[np.ndarray] = None
        self._cached_output: Optional[np.ndarray] = None
        self.weight_grad = np.zeros_like(self.weights)
        self.bias_grad = np.zeros_like(self.biases)

    # ------------------------------------------------------------------ #
    # Forward / backward
    # ------------------------------------------------------------------ #
    def forward(self, inputs: np.ndarray, training: bool = True) -> np.ndarray:
        """Compute the layer output for a batch of inputs (batch, in_features)."""
        inputs = np.atleast_2d(np.asarray(inputs, dtype=float))
        if inputs.shape[1] != self.in_features:
            raise ValueError(
                f"expected input width {self.in_features}, got {inputs.shape[1]}"
            )
        pre_activation = inputs @ self.weights + self.biases
        output = self.activation.forward(pre_activation)
        if training:
            self._cached_input = inputs
            self._cached_pre_activation = pre_activation
            self._cached_output = output
        return output

    def backward(self, upstream_grad: np.ndarray) -> np.ndarray:
        """Backpropagate ``d loss / d output`` and return ``d loss / d input``.

        Parameter gradients are accumulated into ``weight_grad`` /
        ``bias_grad`` (callers zero them between updates via
        :meth:`zero_grad`).
        """
        if self._cached_input is None or self._cached_pre_activation is None:
            raise RuntimeError("backward() called before a training-mode forward()")
        upstream_grad = np.atleast_2d(np.asarray(upstream_grad, dtype=float))
        local_grad = upstream_grad * self.activation.derivative_from_output(
            self._cached_pre_activation, self._cached_output
        )
        self.weight_grad += self._cached_input.T @ local_grad
        self.bias_grad += local_grad.sum(axis=0)
        return local_grad @ self.weights.T

    def zero_grad(self) -> None:
        """Reset accumulated parameter gradients to zero."""
        self.weight_grad.fill(0.0)
        self.bias_grad.fill(0.0)

    # ------------------------------------------------------------------ #
    # Parameter access
    # ------------------------------------------------------------------ #
    def parameters(self) -> Dict[str, np.ndarray]:
        """Live references to the layer's parameters."""
        return {"weights": self.weights, "biases": self.biases}

    def gradients(self) -> Dict[str, np.ndarray]:
        """Live references to the layer's accumulated gradients."""
        return {"weights": self.weight_grad, "biases": self.bias_grad}

    def set_parameters(self, params: Dict[str, np.ndarray]) -> None:
        """Copy parameter values from ``params`` (shapes must match)."""
        if params["weights"].shape != self.weights.shape:
            raise ValueError(
                f"weight shape mismatch: {params['weights'].shape} vs {self.weights.shape}"
            )
        if params["biases"].shape != self.biases.shape:
            raise ValueError(
                f"bias shape mismatch: {params['biases'].shape} vs {self.biases.shape}"
            )
        self.weights = params["weights"].copy()
        self.biases = params["biases"].copy()

    def parameter_count(self) -> int:
        """Total number of scalar parameters in the layer."""
        return self.weights.size + self.biases.size

    def config(self) -> Dict[str, object]:
        """Architecture description used by network serialization."""
        return {
            "in_features": self.in_features,
            "out_features": self.out_features,
            "activation": self.activation.name,
        }
