"""First-order optimizers operating on parameter/gradient dictionaries.

Optimizers are decoupled from network classes: they receive the list of
``(parameters, gradients)`` dictionaries produced by
:meth:`repro.nn.network.MLP.parameter_groups` and update the parameter arrays
in place.  Per-parameter optimizer state (momenta, second moments) is keyed
by ``(group index, parameter name)``.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import Dict, List, Tuple

import numpy as np

from repro.utils.validation import check_non_negative, check_positive

ParameterGroup = Tuple[Dict[str, np.ndarray], Dict[str, np.ndarray]]


class Optimizer(ABC):
    """Interface of all optimizers."""

    def __init__(self, learning_rate: float) -> None:
        check_positive(learning_rate, "learning_rate")
        self.learning_rate = learning_rate
        self.steps = 0

    @abstractmethod
    def _update_parameter(
        self, key: Tuple[int, str], parameter: np.ndarray, gradient: np.ndarray
    ) -> None:
        """Apply one update to a single parameter array in place."""

    def step(self, groups: List[ParameterGroup]) -> None:
        """Apply one optimization step over all parameter groups."""
        self.steps += 1
        for index, (parameters, gradients) in enumerate(groups):
            for name, parameter in parameters.items():
                gradient = gradients[name]
                self._update_parameter((index, name), parameter, gradient)

    def state_size(self) -> int:
        """Number of per-parameter state arrays held (used in tests)."""
        return 0


class SGD(Optimizer):
    """Plain stochastic gradient descent, optionally with momentum."""

    def __init__(self, learning_rate: float = 1e-2, momentum: float = 0.0) -> None:
        super().__init__(learning_rate)
        check_non_negative(momentum, "momentum")
        if momentum >= 1.0:
            raise ValueError(f"momentum must be < 1, got {momentum}")
        self.momentum = momentum
        self._velocity: Dict[Tuple[int, str], np.ndarray] = {}

    def _update_parameter(self, key, parameter, gradient) -> None:
        if self.momentum > 0.0:
            velocity = self._velocity.setdefault(key, np.zeros_like(parameter))
            velocity *= self.momentum
            velocity -= self.learning_rate * gradient
            parameter += velocity
        else:
            parameter -= self.learning_rate * gradient

    def state_size(self) -> int:
        return len(self._velocity)


class RMSProp(Optimizer):
    """RMSProp: scale updates by a running average of squared gradients."""

    def __init__(
        self,
        learning_rate: float = 1e-3,
        decay: float = 0.99,
        epsilon: float = 1e-8,
    ) -> None:
        super().__init__(learning_rate)
        if not 0.0 < decay < 1.0:
            raise ValueError(f"decay must be in (0, 1), got {decay}")
        check_positive(epsilon, "epsilon")
        self.decay = decay
        self.epsilon = epsilon
        self._square_avg: Dict[Tuple[int, str], np.ndarray] = {}

    def _update_parameter(self, key, parameter, gradient) -> None:
        square_avg = self._square_avg.setdefault(key, np.zeros_like(parameter))
        square_avg *= self.decay
        square_avg += (1.0 - self.decay) * gradient**2
        parameter -= self.learning_rate * gradient / (np.sqrt(square_avg) + self.epsilon)

    def state_size(self) -> int:
        return len(self._square_avg)


class Adam(Optimizer):
    """Adam with bias-corrected first and second moment estimates."""

    def __init__(
        self,
        learning_rate: float = 1e-3,
        beta1: float = 0.9,
        beta2: float = 0.999,
        epsilon: float = 1e-8,
    ) -> None:
        super().__init__(learning_rate)
        if not 0.0 <= beta1 < 1.0:
            raise ValueError(f"beta1 must be in [0, 1), got {beta1}")
        if not 0.0 <= beta2 < 1.0:
            raise ValueError(f"beta2 must be in [0, 1), got {beta2}")
        check_positive(epsilon, "epsilon")
        self.beta1 = beta1
        self.beta2 = beta2
        self.epsilon = epsilon
        self._first_moment: Dict[Tuple[int, str], np.ndarray] = {}
        self._second_moment: Dict[Tuple[int, str], np.ndarray] = {}

    def _update_parameter(self, key, parameter, gradient) -> None:
        first = self._first_moment.setdefault(key, np.zeros_like(parameter))
        second = self._second_moment.setdefault(key, np.zeros_like(parameter))
        first *= self.beta1
        first += (1.0 - self.beta1) * gradient
        second *= self.beta2
        second += (1.0 - self.beta2) * gradient**2
        # Bias correction uses the global step count, which is incremented in
        # step() before parameter updates, so it is always >= 1 here.
        first_hat = first / (1.0 - self.beta1**self.steps)
        second_hat = second / (1.0 - self.beta2**self.steps)
        parameter -= self.learning_rate * first_hat / (np.sqrt(second_hat) + self.epsilon)

    def state_size(self) -> int:
        return len(self._first_moment) + len(self._second_moment)


def get_optimizer(name: str, learning_rate: float = 1e-3, **kwargs) -> Optimizer:
    """Look up an optimizer by name (``sgd``, ``rmsprop``, ``adam``)."""
    name = name.lower()
    if name == "sgd":
        return SGD(learning_rate, **kwargs)
    if name == "rmsprop":
        return RMSProp(learning_rate, **kwargs)
    if name == "adam":
        return Adam(learning_rate, **kwargs)
    raise ValueError(
        f"unknown optimizer {name!r}; available: ['sgd', 'rmsprop', 'adam']"
    )


def clip_gradients(groups: List[ParameterGroup], max_norm: float) -> float:
    """Globally clip gradients to ``max_norm`` (L2) and return the raw norm."""
    check_positive(max_norm, "max_norm")
    total = 0.0
    for _, gradients in groups:
        for gradient in gradients.values():
            total += float(np.sum(gradient**2))
    norm = float(np.sqrt(total))
    if norm > max_norm and norm > 0:
        scale = max_norm / norm
        for _, gradients in groups:
            for gradient in gradients.values():
                gradient *= scale
    return norm
