"""Activation functions with forward and derivative evaluation.

Each activation is a small stateless object so that layers can store a
reference and the whole network remains picklable / serializable to JSON
(by name).
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import Dict, Type

import numpy as np


class Activation(ABC):
    """Interface: elementwise forward and derivative w.r.t. pre-activation."""

    name: str = "activation"

    @abstractmethod
    def forward(self, z: np.ndarray) -> np.ndarray:
        """Apply the activation elementwise to pre-activations ``z``."""

    @abstractmethod
    def derivative(self, z: np.ndarray) -> np.ndarray:
        """Elementwise derivative evaluated at pre-activations ``z``."""

    def derivative_from_output(self, z: np.ndarray, output: np.ndarray) -> np.ndarray:
        """Derivative given both ``z`` and the cached forward output.

        Activations whose derivative is cheaper to express in terms of their
        output (sigmoid, tanh) override this to skip recomputing the forward
        pass during backprop; the default falls back to :meth:`derivative`.
        """
        return self.derivative(z)


class Identity(Activation):
    """The identity activation (used by output layers of Q-networks)."""

    name = "identity"

    def forward(self, z: np.ndarray) -> np.ndarray:
        return z

    def derivative(self, z: np.ndarray) -> np.ndarray:
        return np.ones_like(z)


class ReLU(Activation):
    """Rectified linear unit."""

    name = "relu"

    def forward(self, z: np.ndarray) -> np.ndarray:
        return np.maximum(0.0, z)

    def derivative(self, z: np.ndarray) -> np.ndarray:
        return (z > 0.0).astype(z.dtype)


class LeakyReLU(Activation):
    """Leaky rectified linear unit with configurable negative slope."""

    name = "leaky_relu"

    def __init__(self, negative_slope: float = 0.01) -> None:
        if negative_slope < 0:
            raise ValueError("negative_slope must be >= 0")
        self.negative_slope = negative_slope

    def forward(self, z: np.ndarray) -> np.ndarray:
        return np.where(z > 0.0, z, self.negative_slope * z)

    def derivative(self, z: np.ndarray) -> np.ndarray:
        return np.where(z > 0.0, 1.0, self.negative_slope).astype(z.dtype)


class Tanh(Activation):
    """Hyperbolic tangent."""

    name = "tanh"

    def forward(self, z: np.ndarray) -> np.ndarray:
        return np.tanh(z)

    def derivative(self, z: np.ndarray) -> np.ndarray:
        return 1.0 - np.tanh(z) ** 2

    def derivative_from_output(self, z: np.ndarray, output: np.ndarray) -> np.ndarray:
        return 1.0 - output**2


class Sigmoid(Activation):
    """Logistic sigmoid."""

    name = "sigmoid"

    def forward(self, z: np.ndarray) -> np.ndarray:
        # Numerically stable piecewise formulation.
        out = np.empty_like(z, dtype=float)
        positive = z >= 0
        out[positive] = 1.0 / (1.0 + np.exp(-z[positive]))
        exp_z = np.exp(z[~positive])
        out[~positive] = exp_z / (1.0 + exp_z)
        return out

    def derivative(self, z: np.ndarray) -> np.ndarray:
        s = self.forward(z)
        return s * (1.0 - s)

    def derivative_from_output(self, z: np.ndarray, output: np.ndarray) -> np.ndarray:
        return output * (1.0 - output)


_ACTIVATIONS: Dict[str, Type[Activation]] = {
    cls.name: cls for cls in (Identity, ReLU, LeakyReLU, Tanh, Sigmoid)
}


def get_activation(name: str) -> Activation:
    """Look up an activation by name (``relu``, ``tanh``, ``identity``, ...)."""
    try:
        return _ACTIVATIONS[name.lower()]()
    except KeyError as exc:
        raise ValueError(
            f"unknown activation {name!r}; available: {sorted(_ACTIVATIONS)}"
        ) from exc


def softmax(logits: np.ndarray, axis: int = -1) -> np.ndarray:
    """Numerically stable softmax along ``axis``."""
    shifted = logits - np.max(logits, axis=axis, keepdims=True)
    exp = np.exp(shifted)
    return exp / np.sum(exp, axis=axis, keepdims=True)


def log_softmax(logits: np.ndarray, axis: int = -1) -> np.ndarray:
    """Numerically stable log-softmax along ``axis``."""
    shifted = logits - np.max(logits, axis=axis, keepdims=True)
    return shifted - np.log(np.sum(np.exp(shifted), axis=axis, keepdims=True))
