"""A minimal pure-numpy neural network library used by the DRL agents."""

from repro.nn.activations import (
    Activation,
    Identity,
    LeakyReLU,
    ReLU,
    Sigmoid,
    Tanh,
    get_activation,
    log_softmax,
    softmax,
)
from repro.nn.layers import DenseLayer
from repro.nn.losses import HuberLoss, Loss, MSELoss, get_loss
from repro.nn.network import MLP
from repro.nn.optimizers import (
    Adam,
    Optimizer,
    RMSProp,
    SGD,
    clip_gradients,
    get_optimizer,
)

__all__ = [
    "Activation",
    "Identity",
    "LeakyReLU",
    "ReLU",
    "Sigmoid",
    "Tanh",
    "get_activation",
    "log_softmax",
    "softmax",
    "DenseLayer",
    "HuberLoss",
    "Loss",
    "MSELoss",
    "get_loss",
    "MLP",
    "Adam",
    "Optimizer",
    "RMSProp",
    "SGD",
    "clip_gradients",
    "get_optimizer",
]
