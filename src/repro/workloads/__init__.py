"""Workload generation and named experiment scenarios."""

from repro.workloads.generator import RequestGenerator, WorkloadConfig
from repro.workloads.scenarios import (
    Scenario,
    diurnal_scenario,
    hotspot_scenario,
    reference_scenario,
    scalability_scenario,
)

__all__ = [
    "RequestGenerator",
    "WorkloadConfig",
    "Scenario",
    "diurnal_scenario",
    "hotspot_scenario",
    "reference_scenario",
    "scalability_scenario",
]
