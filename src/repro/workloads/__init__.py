"""Workload generation and named experiment scenarios."""

from repro.workloads.generator import RequestGenerator, WorkloadConfig
from repro.workloads.scenarios import (
    Scenario,
    diurnal_scenario,
    hotspot_scenario,
    reference_scenario,
    sample_scenarios,
    scalability_scenario,
    scenario_grid,
)

__all__ = [
    "RequestGenerator",
    "WorkloadConfig",
    "Scenario",
    "diurnal_scenario",
    "hotspot_scenario",
    "reference_scenario",
    "sample_scenarios",
    "scalability_scenario",
    "scenario_grid",
]
