"""Request/workload generation.

The :class:`RequestGenerator` draws SFC requests from the chain-template mix:
service class (weighted), bandwidth, latency SLA and holding time are sampled
per request; the ingress node is a random edge node (optionally skewed
towards "hotspot" metros).  Combined with an arrival process it produces the
full request trace one simulation run consumes.
"""

from __future__ import annotations

import warnings
from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional, Sequence

import numpy as np

from repro.nfv.catalog import (
    ChainTemplate,
    VNFCatalog,
    default_catalog,
    default_chain_templates,
    validate_templates,
)
from repro.nfv.sfc import SFCRequest, ServiceFunctionChain
from repro.nfv.sla import ServiceLevelAgreement
from repro.sim.arrivals import ArrivalProcess, PoissonProcess
from repro.substrate.network import SubstrateNetwork
from repro.utils.rng import RandomState, derive_seed, new_rng
from repro.utils.validation import check_positive, check_probability


@dataclass
class WorkloadConfig:
    """Configuration of the request generator."""

    arrival_rate: float = 0.5
    horizon: float = 1000.0
    hotspot_fraction: float = 0.0
    hotspot_nodes: Sequence[int] = field(default_factory=tuple)
    mean_holding_time_scale: float = 1.0
    sla_scale: float = 1.0
    seed: RandomState = None

    def __post_init__(self) -> None:
        check_positive(self.arrival_rate, "arrival_rate")
        check_positive(self.horizon, "horizon")
        check_probability(self.hotspot_fraction, "hotspot_fraction")
        check_positive(self.mean_holding_time_scale, "mean_holding_time_scale")
        check_positive(self.sla_scale, "sla_scale")


class RequestGenerator:
    """Samples :class:`SFCRequest` objects for a given substrate network."""

    def __init__(
        self,
        network: SubstrateNetwork,
        catalog: Optional[VNFCatalog] = None,
        templates: Optional[Sequence[ChainTemplate]] = None,
        config: Optional[WorkloadConfig] = None,
    ) -> None:
        self.network = network
        self.catalog = catalog or default_catalog()
        self.templates = list(templates or default_chain_templates())
        validate_templates(self.templates, self.catalog)
        self.config = config or WorkloadConfig()
        self._rng = new_rng(self.config.seed)
        weights = np.array([t.weight for t in self.templates], dtype=float)
        self._template_probabilities = weights / weights.sum()
        if not network.edge_node_ids:
            raise ValueError("the substrate network has no edge nodes for ingress")
        # Validate the hotspot configuration against this network up front:
        # silently dropping non-edge hotspots (or skewing towards an empty
        # hotspot set) would degrade to uniform ingress without any signal.
        # With the skew inactive (hotspot_fraction == 0) stale ids cannot
        # distort anything, so they only warrant a warning — configs carrying
        # hotspot sets are commonly re-pointed at other topologies.
        edge_ids = set(network.edge_node_ids)
        non_edge = [n for n in self.config.hotspot_nodes if n not in edge_ids]
        if non_edge and self.config.hotspot_fraction > 0:
            raise ValueError(
                f"hotspot_nodes {sorted(non_edge)} are not edge nodes of this "
                f"network (edge nodes: {sorted(edge_ids)}); hotspot ingress "
                "skew only applies to edge nodes"
            )
        if non_edge:
            warnings.warn(
                f"hotspot_nodes {sorted(non_edge)} are not edge nodes of this "
                "network; they are inert while hotspot_fraction=0",
                stacklevel=2,
            )
        if self.config.hotspot_fraction > 0 and not self.config.hotspot_nodes:
            raise ValueError(
                f"hotspot_fraction={self.config.hotspot_fraction} with an "
                "empty hotspot_nodes set would silently degrade to uniform "
                "ingress; configure hotspot_nodes or set hotspot_fraction=0"
            )
        self._hotspots: List[int] = list(self.config.hotspot_nodes)

    # ------------------------------------------------------------------ #
    # Single-request sampling
    # ------------------------------------------------------------------ #
    def sample_template(self) -> ChainTemplate:
        """Draw a service class according to the template weights."""
        index = self._rng.choice(len(self.templates), p=self._template_probabilities)
        return self.templates[int(index)]

    def sample_source_node(self) -> int:
        """Draw an ingress edge node, honouring the hotspot skew."""
        if self._hotspots and self._rng.uniform() < self.config.hotspot_fraction:
            return int(self._rng.choice(self._hotspots))
        return int(self._rng.choice(self.network.edge_node_ids))

    def sample_request(self, arrival_time: float = 0.0) -> SFCRequest:
        """Sample one complete request arriving at ``arrival_time``."""
        template = self.sample_template()
        bandwidth = float(self._rng.uniform(*template.bandwidth_range))
        sla_latency = float(
            self._rng.uniform(*template.latency_sla_range_ms) * self.config.sla_scale
        )
        holding_time = float(
            self._rng.exponential(
                template.mean_holding_time * self.config.mean_holding_time_scale
            )
        )
        holding_time = max(1.0, holding_time)
        chain = ServiceFunctionChain.from_template(template, self.catalog, bandwidth)
        return SFCRequest(
            chain=chain,
            source_node_id=self.sample_source_node(),
            sla=ServiceLevelAgreement(max_latency_ms=sla_latency),
            arrival_time=arrival_time,
            holding_time=holding_time,
        )

    # ------------------------------------------------------------------ #
    # Trace generation
    # ------------------------------------------------------------------ #
    def generate_trace(
        self,
        arrival_process: Optional[ArrivalProcess] = None,
        horizon: Optional[float] = None,
    ) -> List[SFCRequest]:
        """Generate a full arrival-ordered request trace.

        When no arrival process is supplied a Poisson process at the
        configured ``arrival_rate`` is used, seeded from the workload seed so
        traces are reproducible.
        """
        horizon = horizon if horizon is not None else self.config.horizon
        process = arrival_process or PoissonProcess(
            self.config.arrival_rate, seed=derive_seed(self.config.seed, "arrivals")
        )
        return [
            self.sample_request(arrival_time=time)
            for time in process.arrival_times(horizon)
        ]

    def iter_trace(
        self,
        arrival_process: Optional[ArrivalProcess] = None,
        horizon: Optional[float] = None,
    ) -> Iterator[SFCRequest]:
        """Stream an arrival-ordered request trace lazily.

        Identical sampling to :meth:`generate_trace` (same process, same
        seed → same trace) but yields one request at a time, so multi-day
        soak traces with millions of requests never materialize in memory.
        """
        horizon = horizon if horizon is not None else self.config.horizon
        process = arrival_process or PoissonProcess(
            self.config.arrival_rate, seed=derive_seed(self.config.seed, "arrivals")
        )
        for time in process.arrival_times(horizon):
            yield self.sample_request(arrival_time=time)

    def generate_batch(self, count: int) -> List[SFCRequest]:
        """Generate ``count`` requests following the configured arrival rate.

        Used by the RL environment: inter-arrival times are exponential with
        the workload's ``arrival_rate`` so that the load the agent trains
        under matches the load the online simulator evaluates it under.
        """
        check_positive(count, "count")
        gaps = self._rng.exponential(1.0 / self.config.arrival_rate, size=count)
        times = np.cumsum(gaps)
        return [self.sample_request(arrival_time=float(t)) for t in times]

    def class_mix(self, requests: Sequence[SFCRequest]) -> Dict[str, float]:
        """Fraction of requests per service class (diagnostics)."""
        counts: Dict[str, int] = {}
        for request in requests:
            counts[request.service_class] = counts.get(request.service_class, 0) + 1
        total = max(1, len(requests))
        return {name: counts.get(name, 0) / total for name in sorted(counts)}
