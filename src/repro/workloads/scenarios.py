"""Named workload + topology scenarios used by examples and benchmarks.

A :class:`Scenario` bundles everything one experiment run needs — a topology
factory, a VNF catalog, chain templates and a workload configuration — under
a single seed, so "the reference scenario at λ = 0.8" is one line of code in
benchmarks and examples.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Callable, List, Optional, Sequence

from repro.nfv.catalog import (
    ChainTemplate,
    VNFCatalog,
    default_catalog,
    default_chain_templates,
)
from repro.nfv.sfc import SFCRequest
from repro.sim.arrivals import ArrivalProcess, DiurnalProcess, MMPPProcess, PoissonProcess
from repro.substrate.network import SubstrateNetwork
from repro.substrate.topology import (
    TopologyConfig,
    metro_edge_cloud_topology,
    scaled_topology,
)
from repro.utils.rng import RandomState, derive_seed, new_rng
from repro.workloads.generator import RequestGenerator, WorkloadConfig


@dataclass
class Scenario:
    """A reproducible experiment scenario."""

    name: str
    topology_factory: Callable[[], SubstrateNetwork]
    workload_config: WorkloadConfig
    catalog: VNFCatalog
    templates: Sequence[ChainTemplate]
    arrival_kind: str = "poisson"
    seed: RandomState = 0

    def build_network(self) -> SubstrateNetwork:
        """A fresh substrate network for this scenario."""
        return self.topology_factory()

    def build_generator(self, network: Optional[SubstrateNetwork] = None) -> RequestGenerator:
        """A request generator bound to (a fresh copy of) the scenario network."""
        return RequestGenerator(
            network=network or self.build_network(),
            catalog=self.catalog,
            templates=self.templates,
            config=self.workload_config,
        )

    def build_arrival_process(self) -> ArrivalProcess:
        """The arrival process named by ``arrival_kind``."""
        rate = self.workload_config.arrival_rate
        seed = derive_seed(self.seed, "arrival_process")
        if self.arrival_kind == "poisson":
            return PoissonProcess(rate, seed=seed)
        if self.arrival_kind == "mmpp":
            return MMPPProcess(low_rate=0.5 * rate, high_rate=2.0 * rate, seed=seed)
        if self.arrival_kind == "diurnal":
            return DiurnalProcess(base_rate=rate, seed=seed)
        raise ValueError(f"unknown arrival kind {self.arrival_kind!r}")

    def generate_requests(self, horizon: Optional[float] = None) -> List[SFCRequest]:
        """A full request trace for this scenario."""
        generator = self.build_generator()
        return generator.generate_trace(
            arrival_process=self.build_arrival_process(), horizon=horizon
        )

    def iter_requests(self, horizon: Optional[float] = None):
        """Stream the scenario's request trace lazily.

        Same process and seed as :meth:`generate_requests` (identical trace),
        but yields one request at a time — the input the online serving loop
        consumes for multi-day soaks.
        """
        generator = self.build_generator()
        return generator.iter_trace(
            arrival_process=self.build_arrival_process(), horizon=horizon
        )

    def with_arrival_rate(self, arrival_rate: float) -> "Scenario":
        """A copy of the scenario at a different offered load."""
        return replace(
            self,
            workload_config=replace(self.workload_config, arrival_rate=arrival_rate),
        )

    def with_sla_scale(self, sla_scale: float) -> "Scenario":
        """A copy of the scenario with stretched/compressed latency SLAs."""
        return replace(
            self,
            workload_config=replace(self.workload_config, sla_scale=sla_scale),
        )

    def with_workload_seed(self, seed: RandomState) -> "Scenario":
        """A copy of the scenario whose request stream uses ``seed``.

        The topology (and everything else) is unchanged, so copies built this
        way make statistically independent but structurally identical lanes
        for vectorized environments.
        """
        return replace(
            self, workload_config=replace(self.workload_config, seed=seed)
        )


def reference_scenario(
    arrival_rate: float = 0.8,
    num_edge_nodes: int = 16,
    horizon: float = 600.0,
    seed: RandomState = 0,
    arrival_kind: str = "poisson",
) -> Scenario:
    """The reference scenario of the benchmark harness.

    16 edge nodes over 4 metros plus one cloud, the default VNF catalog and
    chain mix, Poisson arrivals.
    """
    topology_seed = derive_seed(seed, "topology")
    workload_seed = derive_seed(seed, "workload")

    def factory() -> SubstrateNetwork:
        return metro_edge_cloud_topology(
            TopologyConfig(num_edge_nodes=num_edge_nodes, seed=topology_seed)
        )

    return Scenario(
        name=f"reference-{num_edge_nodes}edges",
        topology_factory=factory,
        workload_config=WorkloadConfig(
            arrival_rate=arrival_rate, horizon=horizon, seed=workload_seed
        ),
        catalog=default_catalog(),
        templates=default_chain_templates(),
        arrival_kind=arrival_kind,
        seed=seed,
    )


def scalability_scenario(
    num_edge_nodes: int,
    arrival_rate_per_node: float = 0.05,
    horizon: float = 600.0,
    seed: RandomState = 0,
) -> Scenario:
    """Scenario family for the topology-size sweep (Fig. 5).

    The offered load scales with the number of edge nodes so that every
    topology size operates at a comparable per-node load.
    """
    topology_seed = derive_seed(seed, "topology", num_edge_nodes)
    workload_seed = derive_seed(seed, "workload", num_edge_nodes)

    def factory() -> SubstrateNetwork:
        return scaled_topology(num_edge_nodes, seed=topology_seed)

    return Scenario(
        name=f"scalability-{num_edge_nodes}edges",
        topology_factory=factory,
        workload_config=WorkloadConfig(
            arrival_rate=arrival_rate_per_node * num_edge_nodes,
            horizon=horizon,
            seed=workload_seed,
        ),
        catalog=default_catalog(),
        templates=default_chain_templates(),
        seed=seed,
    )


def hotspot_scenario(
    arrival_rate: float = 0.8,
    hotspot_fraction: float = 0.6,
    num_edge_nodes: int = 16,
    horizon: float = 600.0,
    seed: RandomState = 0,
) -> Scenario:
    """A skewed-ingress scenario: most requests arrive at a few hot metros."""
    base = reference_scenario(
        arrival_rate=arrival_rate,
        num_edge_nodes=num_edge_nodes,
        horizon=horizon,
        seed=seed,
    )
    network = base.build_network()
    hotspot_nodes = tuple(network.edge_node_ids[: max(1, num_edge_nodes // 4)])
    return replace(
        base,
        name=f"hotspot-{num_edge_nodes}edges",
        workload_config=replace(
            base.workload_config,
            hotspot_fraction=hotspot_fraction,
            hotspot_nodes=hotspot_nodes,
        ),
    )


def scenario_grid(
    base: Optional[Scenario] = None,
    arrival_rates: Optional[Sequence[float]] = None,
    sla_scales: Optional[Sequence[float]] = None,
    seed: RandomState = None,
) -> List[Scenario]:
    """A cartesian grid of scenarios over load points and SLA strictness.

    Every grid cell shares the base scenario's topology but gets its own
    derived workload seed, so direct consumers (``generate_requests``,
    ``build_generator``) see independent, individually reproducible request
    streams per cell.  The cells also form the lanes of a scenario-diverse
    :class:`~repro.core.vecenv.VecPlacementEnv` — one batched pass evaluates
    the whole load/SLA sweep instead of K serial runs.  (Note the vec-env
    builder derives its *own* per-lane seeds unless constructed with
    ``derive_lane_seeds=False``.)
    """
    base = base or reference_scenario()
    rates = list(arrival_rates) if arrival_rates else [base.workload_config.arrival_rate]
    scales = list(sla_scales) if sla_scales else [base.workload_config.sla_scale]
    grid_seed = base.seed if seed is None else seed
    cells: List[Scenario] = []
    for rate in rates:
        for scale in scales:
            cell = base.with_arrival_rate(rate).with_sla_scale(scale)
            cell = replace(
                cell,
                name=f"{base.name}@rate={rate:g},sla={scale:g}",
                seed=grid_seed,
            )
            cells.append(
                cell.with_workload_seed(derive_seed(grid_seed, "grid", rate, scale))
            )
    return cells


def sample_scenarios(
    count: int,
    base: Optional[Scenario] = None,
    arrival_rate_range: Sequence[float] = (0.3, 1.2),
    sla_scale_range: Sequence[float] = (0.75, 1.5),
    arrival_kinds: Sequence[str] = ("poisson",),
    seed: RandomState = 0,
) -> List[Scenario]:
    """Sample ``count`` random variations of a base scenario.

    Arrival rate and SLA scale are drawn uniformly from the given ranges and
    the arrival kind uniformly from ``arrival_kinds``; each sample gets a
    derived workload seed.  This is the stochastic counterpart of
    :func:`scenario_grid` for training over diverse load conditions.
    """
    if count <= 0:
        raise ValueError(f"count must be positive, got {count}")
    base = base or reference_scenario()
    rng = new_rng(derive_seed(seed, "scenario_sampler"))
    samples: List[Scenario] = []
    for index in range(count):
        rate = float(rng.uniform(*arrival_rate_range))
        scale = float(rng.uniform(*sla_scale_range))
        kind = str(arrival_kinds[int(rng.integers(len(arrival_kinds)))])
        sample = base.with_arrival_rate(rate).with_sla_scale(scale)
        sample = replace(
            sample,
            name=f"{base.name}#sample{index}",
            arrival_kind=kind,
            seed=derive_seed(seed, "sampled_scenario", index),
        )
        samples.append(
            sample.with_workload_seed(derive_seed(seed, "sampled_workload", index))
        )
    return samples


def diurnal_scenario(
    base_rate: float = 0.6,
    num_edge_nodes: int = 16,
    horizon: float = 1440.0,
    seed: RandomState = 0,
) -> Scenario:
    """A day-length scenario with sinusoidal traffic (autoscaling example)."""
    base = reference_scenario(
        arrival_rate=base_rate,
        num_edge_nodes=num_edge_nodes,
        horizon=horizon,
        seed=seed,
        arrival_kind="diurnal",
    )
    return replace(base, name=f"diurnal-{num_edge_nodes}edges")
