"""Non-learning placement baselines used in every comparison figure."""

from repro.baselines.common import (
    AssignmentPolicy,
    build_if_feasible,
    hosting_candidates,
    latency_of_partial,
)
from repro.baselines.fit import (
    BestFitPolicy,
    CloudOnlyPolicy,
    EdgeOnlyPolicy,
    FirstFitPolicy,
)
from repro.baselines.greedy import (
    GreedyCheapestPolicy,
    GreedyLeastLoadedPolicy,
    GreedyNearestPolicy,
)
from repro.baselines.optimal import BruteForceOptimalPolicy, SearchSpaceTooLargeError
from repro.baselines.random_policy import RandomPlacementPolicy
from repro.baselines.viterbi import ViterbiPlacementPolicy


def standard_baselines(seed=None):
    """The baseline set used by the comparison figures (Figs. 2-7, Table II)."""
    return [
        RandomPlacementPolicy(seed=seed),
        GreedyNearestPolicy(),
        GreedyLeastLoadedPolicy(),
        FirstFitPolicy(),
        BestFitPolicy(),
        CloudOnlyPolicy(),
        ViterbiPlacementPolicy(cost_weight=0.2, load_weight=0.2),
    ]


__all__ = [
    "AssignmentPolicy",
    "build_if_feasible",
    "hosting_candidates",
    "latency_of_partial",
    "BestFitPolicy",
    "CloudOnlyPolicy",
    "EdgeOnlyPolicy",
    "FirstFitPolicy",
    "GreedyCheapestPolicy",
    "GreedyLeastLoadedPolicy",
    "GreedyNearestPolicy",
    "BruteForceOptimalPolicy",
    "SearchSpaceTooLargeError",
    "RandomPlacementPolicy",
    "ViterbiPlacementPolicy",
    "standard_baselines",
]
