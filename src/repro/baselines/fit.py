"""Bin-packing style baselines: first fit, best fit, and tier-restricted.

First fit and best fit treat nodes as bins ordered by id (first fit) or by
remaining slack after the allocation (best fit).  The tier-restricted
policies — cloud-only and edge-only — bound the comparison from the two
extremes of the geo-distribution trade-off: cloud-only has effectively
infinite capacity but pays the WAN latency on every chain; edge-only has the
best latency but saturates quickly.
"""

from __future__ import annotations

from typing import List, Optional

from repro.baselines.common import build_if_feasible, hosting_candidates
from repro.nfv.placement import Placement
from repro.nfv.sfc import SFCRequest
from repro.sim.simulation import PlacementPolicy
from repro.substrate.network import SubstrateNetwork


class FirstFitPolicy(PlacementPolicy):
    """Place each VNF on the first (lowest-id) node with enough capacity."""

    name = "first_fit"

    def place(
        self, request: SFCRequest, network: SubstrateNetwork
    ) -> Optional[Placement]:
        assignment: List[int] = []
        for vnf_index in range(request.num_vnfs):
            candidates = hosting_candidates(request, vnf_index, network)
            if not candidates:
                return None
            assignment.append(candidates[0])
        return build_if_feasible(request, assignment, network)


class BestFitPolicy(PlacementPolicy):
    """Place each VNF on the feasible node left with the least slack.

    Classic best-fit packing: consolidating load onto already-busy nodes
    keeps other nodes free for large future requests, at the price of
    latency-agnostic choices.
    """

    name = "best_fit"

    def place(
        self, request: SFCRequest, network: SubstrateNetwork
    ) -> Optional[Placement]:
        assignment: List[int] = []
        for vnf_index in range(request.num_vnfs):
            candidates = hosting_candidates(request, vnf_index, network)
            if not candidates:
                return None
            demand = request.chain.vnf_at(vnf_index).demand_for(request.bandwidth_mbps)

            def remaining_slack(node_id: int) -> float:
                node = network.node(node_id)
                return (node.available - demand).total()

            assignment.append(min(candidates, key=remaining_slack))
        return build_if_feasible(request, assignment, network)


class CloudOnlyPolicy(PlacementPolicy):
    """Host every VNF in the central cloud (latency-worst, capacity-best)."""

    name = "cloud_only"

    def place(
        self, request: SFCRequest, network: SubstrateNetwork
    ) -> Optional[Placement]:
        cloud_ids = network.cloud_node_ids
        if not cloud_ids:
            return None
        assignment: List[int] = []
        for vnf_index in range(request.num_vnfs):
            candidates = hosting_candidates(request, vnf_index, network, cloud_ids)
            if not candidates:
                return None
            assignment.append(candidates[0])
        return build_if_feasible(request, assignment, network)


class EdgeOnlyPolicy(PlacementPolicy):
    """Host every VNF on edge nodes near the ingress (latency-best, scarce)."""

    name = "edge_only"

    def place(
        self, request: SFCRequest, network: SubstrateNetwork
    ) -> Optional[Placement]:
        edge_ids = network.edge_node_ids
        if not edge_ids:
            return None
        assignment: List[int] = []
        anchor = request.source_node_id
        for vnf_index in range(request.num_vnfs):
            candidates = hosting_candidates(request, vnf_index, network, edge_ids)
            if not candidates:
                return None
            best = min(
                candidates,
                key=lambda node_id: network.latency_between(anchor, node_id),
            )
            assignment.append(best)
            anchor = best
        return build_if_feasible(request, assignment, network)
