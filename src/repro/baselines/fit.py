"""Bin-packing style baselines: first fit, best fit, and tier-restricted.

First fit and best fit treat nodes as bins ordered by id (first fit) or by
remaining slack after the allocation (best fit).  The tier-restricted
policies — cloud-only and edge-only — bound the comparison from the two
extremes of the geo-distribution trade-off: cloud-only has effectively
infinite capacity but pays the WAN latency on every chain; edge-only has the
best latency but saturates quickly.

All four speak the batched protocol: ``plan_assignment`` is the per-request
reference path and ``select_actions`` the vectorized lane kernel (first-valid
or masked-argmin array expressions over the ``(K, A)`` masks, with the tier
policies folding the ledger's tier masks in).
"""

from __future__ import annotations

from typing import List, Optional, Tuple

import numpy as np

from repro.baselines.common import (
    AssignmentPolicy,
    first_valid_actions,
    hosting_candidates,
    lane_masks,
    lane_requests,
    masked_score_actions,
)
from repro.nfv.sfc import SFCRequest
from repro.substrate.network import SubstrateNetwork


class FirstFitPolicy(AssignmentPolicy):
    """Place each VNF on the first (lowest-id) node with enough capacity."""

    name = "first_fit"

    def plan_assignment(
        self, request: SFCRequest, network: SubstrateNetwork
    ) -> Optional[Tuple[int, ...]]:
        assignment: List[int] = []
        for vnf_index in range(request.num_vnfs):
            candidates = hosting_candidates(request, vnf_index, network)
            if not candidates:
                return None
            assignment.append(candidates[0])
        return tuple(assignment)

    def select_actions(self, states=None, masks=None, greedy: bool = True) -> np.ndarray:
        """First valid node action per lane — one argmax over the mask batch."""
        lanes = self.bound_lanes
        masks = lane_masks(lanes, masks)
        context = self.bound_context
        if context is not None:
            return first_valid_actions(masks, context.active)
        _, active = lane_requests(lanes)
        return first_valid_actions(masks, active)


class BestFitPolicy(AssignmentPolicy):
    """Place each VNF on the feasible node left with the least slack.

    Classic best-fit packing: consolidating load onto already-busy nodes
    keeps other nodes free for large future requests, at the price of
    latency-agnostic choices.
    """

    name = "best_fit"

    def plan_assignment(
        self, request: SFCRequest, network: SubstrateNetwork
    ) -> Optional[Tuple[int, ...]]:
        assignment: List[int] = []
        for vnf_index in range(request.num_vnfs):
            candidates = hosting_candidates(request, vnf_index, network)
            if not candidates:
                return None
            demand = request.chain.vnf_at(vnf_index).demand_for(request.bandwidth_mbps)

            def remaining_slack(node_id: int) -> float:
                node = network.node(node_id)
                return (node.available - demand).total()

            assignment.append(min(candidates, key=remaining_slack))
        return tuple(assignment)

    def select_actions(self, states=None, masks=None, greedy: bool = True) -> np.ndarray:
        """Masked argmin over post-allocation slack, batched per lane."""
        lanes = self.bound_lanes
        masks = lane_masks(lanes, masks)
        context = self.bound_context
        if context is not None:
            # Same clamping as (node.available - demand).total(): free
            # capacity clamps at zero, then the per-dimension slack does too.
            free = np.maximum(context.capacity - context.used, 0.0)
            scores = np.maximum(free - context.demands[:, None, :], 0.0).sum(axis=2)
            return masked_score_actions(masks, scores, context.active)
        requests, active = lane_requests(lanes)
        scores = np.full((len(lanes), masks.shape[1] - 1), np.inf)
        for lane, env in enumerate(lanes):
            request = requests[lane]
            if request is None:
                continue
            demand = request.chain.vnf_at(env.vnf_index).demand_array_for(
                request.bandwidth_mbps
            )
            ledger = env.network.ledger
            # Same clamping as (node.available - demand).total(): free
            # capacity clamps at zero, then the per-dimension slack does too.
            free = np.maximum(ledger.node_capacity - ledger.node_used, 0.0)
            scores[lane] = np.maximum(free - demand, 0.0).sum(axis=1)
        return masked_score_actions(masks, scores, active)


class _TierRestrictedMixin:
    """Shared lane kernel plumbing for the tier-restricted policies."""

    def _tier_mask(self, env) -> np.ndarray:
        raise NotImplementedError

    def _tier_valid(self, lanes, masks: np.ndarray) -> np.ndarray:
        reject = masks.shape[1] - 1
        # Tier membership is topology-constant: stack it once per lane set.
        cached = getattr(self, "_tier_stack", None)
        if cached is None or cached[0] is not lanes:
            cached = (lanes, np.stack([self._tier_mask(env) for env in lanes]))
            self._tier_stack = cached
        restricted = masks.copy()
        restricted[:, :reject] &= cached[1]
        return restricted


class CloudOnlyPolicy(_TierRestrictedMixin, AssignmentPolicy):
    """Host every VNF in the central cloud (latency-worst, capacity-best)."""

    name = "cloud_only"

    def plan_assignment(
        self, request: SFCRequest, network: SubstrateNetwork
    ) -> Optional[Tuple[int, ...]]:
        cloud_ids = network.cloud_node_ids
        if not cloud_ids:
            return None
        assignment: List[int] = []
        for vnf_index in range(request.num_vnfs):
            candidates = hosting_candidates(request, vnf_index, network, cloud_ids)
            if not candidates:
                return None
            assignment.append(candidates[0])
        return tuple(assignment)

    def _tier_mask(self, env) -> np.ndarray:
        return env.network.ledger.cloud_tier_mask

    def select_actions(self, states=None, masks=None, greedy: bool = True) -> np.ndarray:
        """First valid cloud-tier node action per lane."""
        lanes = self.bound_lanes
        masks = self._tier_valid(lanes, lane_masks(lanes, masks))
        context = self.bound_context
        if context is not None:
            return first_valid_actions(masks, context.active)
        _, active = lane_requests(lanes)
        return first_valid_actions(masks, active)


class EdgeOnlyPolicy(_TierRestrictedMixin, AssignmentPolicy):
    """Host every VNF on edge nodes near the ingress (latency-best, scarce)."""

    name = "edge_only"

    def plan_assignment(
        self, request: SFCRequest, network: SubstrateNetwork
    ) -> Optional[Tuple[int, ...]]:
        edge_ids = network.edge_node_ids
        if not edge_ids:
            return None
        assignment: List[int] = []
        anchor = request.source_node_id
        for vnf_index in range(request.num_vnfs):
            candidates = hosting_candidates(request, vnf_index, network, edge_ids)
            if not candidates:
                return None
            best = min(
                candidates,
                key=lambda node_id: network.latency_between(anchor, node_id),
            )
            assignment.append(best)
            anchor = best
        return tuple(assignment)

    def _tier_mask(self, env) -> np.ndarray:
        return env.network.ledger.edge_tier_mask

    def select_actions(self, states=None, masks=None, greedy: bool = True) -> np.ndarray:
        """Masked argmin over anchor latency, restricted to edge nodes."""
        lanes = self.bound_lanes
        masks = self._tier_valid(lanes, lane_masks(lanes, masks))
        context = self.bound_context
        if context is not None:
            return masked_score_actions(masks, context.latency, context.active)
        _, active = lane_requests(lanes)
        scores = np.full((len(lanes), masks.shape[1] - 1), np.inf)
        for lane, env in enumerate(lanes):
            if active[lane]:
                scores[lane] = env.network.latency_row(env.anchor_node_id)
        return masked_score_actions(masks, scores, active)
