"""Dynamic-programming (Viterbi-style) chain embedding.

For one request the chain-embedding problem over latency decomposes by VNF
position, so the minimum-latency assignment can be computed exactly with a
Viterbi pass over (VNF position × candidate node).  A configurable node cost
term trades latency against hosting cost and load, which makes this the
strongest non-learning baseline in the comparison — it optimizes each request
exactly, but myopically (it never sacrifices the current request for future
ones, which is precisely what the DRL policy learns to do).
"""

from __future__ import annotations

from typing import List, Optional, Tuple

import numpy as np

from repro.baselines.common import AssignmentPolicy, hosting_candidates
from repro.nfv.sfc import SFCRequest
from repro.substrate.network import SubstrateNetwork
from repro.utils.validation import check_non_negative


class ViterbiPlacementPolicy(AssignmentPolicy):
    """Per-request optimal chain embedding by dynamic programming.

    The per-transition weight is ``latency(u → v) + processing_delay`` plus
    ``cost_weight`` times the hosting cost of the VNF on ``v`` (normalized)
    plus ``load_weight`` times the utilization of ``v``.
    """

    name = "viterbi"

    def __init__(
        self,
        cost_weight: float = 0.0,
        load_weight: float = 0.0,
        cost_normalizer: float = 200.0,
    ) -> None:
        check_non_negative(cost_weight, "cost_weight")
        check_non_negative(load_weight, "load_weight")
        if cost_normalizer <= 0:
            raise ValueError("cost_normalizer must be positive")
        self.cost_weight = cost_weight
        self.load_weight = load_weight
        self.cost_normalizer = cost_normalizer

    def _node_cost(
        self, request: SFCRequest, vnf_index: int, node_id: int, network: SubstrateNetwork
    ) -> float:
        if self.cost_weight == 0.0 and self.load_weight == 0.0:
            return 0.0
        node = network.node(node_id)
        vnf = request.chain.vnf_at(vnf_index)
        hosting = node.hosting_cost(
            vnf.demand_for(request.bandwidth_mbps), request.holding_time
        )
        return (
            self.cost_weight * hosting / self.cost_normalizer * request.sla.max_latency_ms
            + self.load_weight * node.max_utilization() * request.sla.max_latency_ms
        )

    def plan_assignment(
        self, request: SFCRequest, network: SubstrateNetwork
    ) -> Optional[Tuple[int, ...]]:
        candidate_sets: List[List[int]] = []
        for vnf_index in range(request.num_vnfs):
            candidates = hosting_candidates(request, vnf_index, network)
            if not candidates:
                return None
            candidate_sets.append(candidates)

        # Viterbi forward pass: best[k][j] = minimum accumulated weight of
        # placing VNFs 0..k with VNF k on candidate_sets[k][j].
        first = candidate_sets[0]
        best = np.array(
            [
                network.latency_between(request.source_node_id, node_id)
                + request.chain.vnf_at(0).processing_delay_ms
                + self._node_cost(request, 0, node_id, network)
                for node_id in first
            ]
        )
        backpointers: List[np.ndarray] = []

        for vnf_index in range(1, request.num_vnfs):
            current = candidate_sets[vnf_index]
            previous = candidate_sets[vnf_index - 1]
            transition = np.empty((len(previous), len(current)))
            for i, prev_node in enumerate(previous):
                for j, node_id in enumerate(current):
                    transition[i, j] = (
                        network.latency_between(prev_node, node_id)
                        + request.chain.vnf_at(vnf_index).processing_delay_ms
                        + self._node_cost(request, vnf_index, node_id, network)
                    )
            totals = best[:, None] + transition
            backpointers.append(np.argmin(totals, axis=0))
            best = np.min(totals, axis=0)

        # Backtrack the minimizing assignment.
        last_index = int(np.argmin(best))
        assignment_indices = [last_index]
        for pointer in reversed(backpointers):
            assignment_indices.append(int(pointer[assignment_indices[-1]]))
        assignment_indices.reverse()
        return tuple(
            candidate_sets[k][idx] for k, idx in enumerate(assignment_indices)
        )
