"""Shared helpers for the heuristic placement baselines."""

from __future__ import annotations

from typing import Iterable, List, Optional, Sequence

from repro.nfv.placement import Placement
from repro.nfv.sfc import SFCRequest
from repro.substrate.network import NoRouteError, SubstrateNetwork


def build_if_feasible(
    request: SFCRequest,
    assignment: Sequence[int],
    network: SubstrateNetwork,
) -> Optional[Placement]:
    """Route ``assignment`` and return the placement only if it is feasible."""
    try:
        placement = Placement.build(request, assignment, network)
    except NoRouteError:
        return None
    if not placement.is_feasible(network):
        return None
    return placement


def hosting_candidates(
    request: SFCRequest,
    vnf_index: int,
    network: SubstrateNetwork,
    node_ids: Optional[Iterable[int]] = None,
) -> List[int]:
    """Nodes with enough free capacity for VNF ``vnf_index`` of ``request``."""
    demand = request.chain.vnf_at(vnf_index).demand_for(request.bandwidth_mbps)
    pool = list(node_ids) if node_ids is not None else network.node_ids
    return [node_id for node_id in pool if network.node(node_id).can_host(demand)]


def latency_of_partial(
    request: SFCRequest,
    assignment: Sequence[int],
    network: SubstrateNetwork,
) -> float:
    """Propagation + processing latency of a (possibly partial) assignment."""
    total = 0.0
    anchor = request.source_node_id
    for index, node_id in enumerate(assignment):
        total += network.latency_between(anchor, node_id)
        total += request.chain.vnf_at(index).processing_delay_ms
        anchor = node_id
    return total
