"""Shared helpers for the heuristic placement baselines.

Besides the per-request helpers (`build_if_feasible`, `hosting_candidates`,
`latency_of_partial`) this module provides the building blocks of the batched
policy protocol:

* :class:`AssignmentPolicy` — base class for heuristics that decide a node
  assignment per request (``plan_assignment`` is primary, ``place`` derived),
* :func:`lane_masks` / :func:`masked_score_actions` / :func:`first_valid_actions`
  — array kernels that turn per-lane score rows plus ``(K, A)`` validity
  masks into one action per vectorized-environment lane, matching the
  per-request reference decisions bitwise (first-minimum tie-breaking in
  ledger node order, exactly like ``min()`` over ``hosting_candidates``).
"""

from __future__ import annotations

from abc import abstractmethod
from typing import Iterable, List, Optional, Sequence, Tuple

import numpy as np

from repro.nfv.placement import Placement
from repro.nfv.sfc import SFCRequest
from repro.sim.simulation import PlacementPolicy
from repro.substrate.network import NoRouteError, SubstrateNetwork


def build_if_feasible(
    request: SFCRequest,
    assignment: Sequence[int],
    network: SubstrateNetwork,
) -> Optional[Placement]:
    """Route ``assignment`` and return the placement only if it is feasible."""
    try:
        placement = Placement.build(request, assignment, network)
    except NoRouteError:
        return None
    if not placement.is_feasible(network):
        return None
    return placement


def hosting_candidates(
    request: SFCRequest,
    vnf_index: int,
    network: SubstrateNetwork,
    node_ids: Optional[Iterable[int]] = None,
) -> List[int]:
    """Nodes with enough free capacity for VNF ``vnf_index`` of ``request``."""
    demand = request.chain.vnf_at(vnf_index).demand_for(request.bandwidth_mbps)
    pool = list(node_ids) if node_ids is not None else network.node_ids
    return [node_id for node_id in pool if network.node(node_id).can_host(demand)]


def latency_of_partial(
    request: SFCRequest,
    assignment: Sequence[int],
    network: SubstrateNetwork,
) -> float:
    """End-to-end latency of a (possibly partial) assignment.

    Charges propagation plus processing along the placed prefix, and — once
    the assignment covers the whole chain — the egress segment to the
    request's destination node, matching
    :meth:`~repro.nfv.placement.Placement.end_to_end_latency_ms` exactly on
    complete assignments.  (Omitting the egress term underestimates full
    chains with an explicit destination, which lets pruning heuristics
    over-admit requests that the placement-level SLA check then rejects.)
    """
    total = 0.0
    anchor = request.source_node_id
    for index, node_id in enumerate(assignment):
        total += network.latency_between(anchor, node_id)
        total += request.chain.vnf_at(index).processing_delay_ms
        anchor = node_id
    if (
        len(assignment) == request.num_vnfs
        and request.destination_node_id is not None
    ):
        total += network.latency_between(anchor, request.destination_node_id)
    return total


class AssignmentPolicy(PlacementPolicy):
    """Base for heuristics whose primary decision is a node assignment.

    Subclasses implement :meth:`plan_assignment`; :meth:`place` is derived by
    routing and feasibility-checking the planned assignment.  This inverts
    the default :class:`~repro.sim.simulation.PlacementPolicy` orientation so
    the batched protocol's reference backend never builds placements it does
    not need.
    """

    @abstractmethod
    def plan_assignment(
        self, request: SFCRequest, network: SubstrateNetwork
    ) -> Optional[Tuple[int, ...]]:
        """The node assignment this policy chooses, or ``None`` to reject."""

    def place(
        self, request: SFCRequest, network: SubstrateNetwork
    ) -> Optional[Placement]:
        assignment = self.plan_assignment(request, network)
        if assignment is None:
            return None
        return build_if_feasible(request, assignment, network)


def lane_masks(lanes: Sequence, masks: Optional[np.ndarray]) -> np.ndarray:
    """The ``(K, A)`` validity masks for ``lanes``, computing them if absent."""
    if masks is not None:
        return np.atleast_2d(np.asarray(masks, dtype=bool))
    return np.stack([env.valid_action_mask() for env in lanes])


def masked_score_actions(
    masks: np.ndarray, scores: np.ndarray, active: np.ndarray
) -> np.ndarray:
    """Lowest-score valid node action per lane (reject when none is valid).

    ``scores`` is ``(K, num_nodes)`` in action order; ``active`` flags lanes
    with a request in flight.  Ties — including rows whose valid scores are
    all infinite — resolve to the lowest action index, the same
    first-minimum rule as ``min()`` over an ordered candidate list.
    """
    # repro-lint: readonly=masks,scores,active
    reject = masks.shape[1] - 1
    node_valid = masks[:, :reject] & active[:, None]
    masked = np.where(node_valid, scores, np.inf)
    best = masked.argmin(axis=1)
    rows = np.arange(masks.shape[0])
    first_valid = node_valid.argmax(axis=1)
    choice = np.where(np.isfinite(masked[rows, best]), best, first_valid)
    return np.where(node_valid.any(axis=1), choice, reject).astype(int)


def first_valid_actions(masks: np.ndarray, active: np.ndarray) -> np.ndarray:
    """First (lowest-index) valid node action per lane, reject when none."""
    # repro-lint: readonly=masks,active
    reject = masks.shape[1] - 1
    node_valid = masks[:, :reject] & active[:, None]
    first = node_valid.argmax(axis=1)
    return np.where(node_valid.any(axis=1), first, reject).astype(int)


def lane_requests(lanes: Sequence) -> Tuple[List, np.ndarray]:
    """Per-lane current requests and the boolean active-lane vector."""
    requests = [env.current_request for env in lanes]
    active = np.array([request is not None for request in requests], dtype=bool)
    return requests, active
