"""Greedy placement heuristics.

Two standard greedy rules appear in virtually every VNF-placement evaluation:

* **greedy-nearest** — host each VNF on the feasible node with the lowest
  latency from the current anchor (latency-first, ignores load), and
* **greedy-least-loaded** — host each VNF on the feasible node with the most
  free capacity (load-first, ignores latency).

Both are strong at one end of the latency/utilization trade-off and weak at
the other, which is exactly the gap the learned policy closes.
"""

from __future__ import annotations

from typing import Optional

from repro.baselines.common import build_if_feasible, hosting_candidates
from repro.nfv.placement import Placement
from repro.nfv.sfc import SFCRequest
from repro.sim.simulation import PlacementPolicy
from repro.substrate.network import SubstrateNetwork


class GreedyNearestPolicy(PlacementPolicy):
    """Latency-greedy: pick the closest feasible node for every VNF."""

    name = "greedy_nearest"

    def place(
        self, request: SFCRequest, network: SubstrateNetwork
    ) -> Optional[Placement]:
        assignment = []
        anchor = request.source_node_id
        for vnf_index in range(request.num_vnfs):
            candidates = hosting_candidates(request, vnf_index, network)
            if not candidates:
                return None
            best = min(
                candidates,
                key=lambda node_id: network.latency_between(anchor, node_id),
            )
            assignment.append(best)
            anchor = best
        return build_if_feasible(request, assignment, network)


class GreedyLeastLoadedPolicy(PlacementPolicy):
    """Load-greedy: pick the feasible node with the lowest utilization."""

    name = "greedy_least_loaded"

    def place(
        self, request: SFCRequest, network: SubstrateNetwork
    ) -> Optional[Placement]:
        assignment = []
        for vnf_index in range(request.num_vnfs):
            candidates = hosting_candidates(request, vnf_index, network)
            if not candidates:
                return None
            best = min(
                candidates,
                key=lambda node_id: network.node(node_id).max_utilization(),
            )
            assignment.append(best)
        return build_if_feasible(request, assignment, network)


class GreedyCheapestPolicy(PlacementPolicy):
    """Cost-greedy: pick the feasible node with the lowest hosting cost."""

    name = "greedy_cheapest"

    def place(
        self, request: SFCRequest, network: SubstrateNetwork
    ) -> Optional[Placement]:
        assignment = []
        for vnf_index in range(request.num_vnfs):
            candidates = hosting_candidates(request, vnf_index, network)
            if not candidates:
                return None
            vnf = request.chain.vnf_at(vnf_index)
            demand = vnf.demand_for(request.bandwidth_mbps)
            best = min(
                candidates,
                key=lambda node_id: network.node(node_id).hosting_cost(
                    demand, request.holding_time
                ),
            )
            assignment.append(best)
        return build_if_feasible(request, assignment, network)
