"""Greedy placement heuristics.

Two standard greedy rules appear in virtually every VNF-placement evaluation:

* **greedy-nearest** — host each VNF on the feasible node with the lowest
  latency from the current anchor (latency-first, ignores load), and
* **greedy-least-loaded** — host each VNF on the feasible node with the most
  free capacity (load-first, ignores latency).

Both are strong at one end of the latency/utilization trade-off and weak at
the other, which is exactly the gap the learned policy closes.

Each policy implements both halves of the batched protocol: the per-request
``plan_assignment`` reference path, and a vectorized ``select_actions`` that
scores every substrate node of every lane in one ``(K, N)`` array expression
and takes a masked argmin — decision-for-decision identical to the per-lane
reference (the equivalence suite asserts it bitwise).
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

from repro.baselines.common import (
    AssignmentPolicy,
    hosting_candidates,
    lane_masks,
    lane_requests,
    masked_score_actions,
)
from repro.nfv.sfc import SFCRequest
from repro.substrate.network import SubstrateNetwork


class GreedyNearestPolicy(AssignmentPolicy):
    """Latency-greedy: pick the closest feasible node for every VNF."""

    name = "greedy_nearest"

    def plan_assignment(
        self, request: SFCRequest, network: SubstrateNetwork
    ) -> Optional[Tuple[int, ...]]:
        assignment = []
        anchor = request.source_node_id
        for vnf_index in range(request.num_vnfs):
            candidates = hosting_candidates(request, vnf_index, network)
            if not candidates:
                return None
            best = min(
                candidates,
                key=lambda node_id: network.latency_between(anchor, node_id),
            )
            assignment.append(best)
            anchor = best
        return tuple(assignment)

    def select_actions(self, states=None, masks=None, greedy: bool = True) -> np.ndarray:
        """Masked argmin over each lane's anchor latency row."""
        lanes = self.bound_lanes
        masks = lane_masks(lanes, masks)
        context = self.bound_context
        if context is not None:
            return masked_score_actions(masks, context.latency, context.active)
        requests, active = lane_requests(lanes)
        scores = np.full((len(lanes), masks.shape[1] - 1), np.inf)
        for lane, env in enumerate(lanes):
            if active[lane]:
                scores[lane] = env.network.latency_row(env.anchor_node_id)
        return masked_score_actions(masks, scores, active)


class GreedyLeastLoadedPolicy(AssignmentPolicy):
    """Load-greedy: pick the feasible node with the lowest utilization."""

    name = "greedy_least_loaded"

    def plan_assignment(
        self, request: SFCRequest, network: SubstrateNetwork
    ) -> Optional[Tuple[int, ...]]:
        assignment = []
        for vnf_index in range(request.num_vnfs):
            candidates = hosting_candidates(request, vnf_index, network)
            if not candidates:
                return None
            best = min(
                candidates,
                key=lambda node_id: network.node(node_id).max_utilization(),
            )
            assignment.append(best)
        return tuple(assignment)

    def select_actions(self, states=None, masks=None, greedy: bool = True) -> np.ndarray:
        """Masked argmin over each lane's bottleneck-utilization column."""
        lanes = self.bound_lanes
        masks = lane_masks(lanes, masks)
        context = self.bound_context
        if context is not None:
            # Same expression as ledger.max_utilization, stacked over lanes.
            utilization = (context.used / context.capacity_safe).max(axis=2)
            return masked_score_actions(masks, utilization, context.active)
        requests, active = lane_requests(lanes)
        scores = np.full((len(lanes), masks.shape[1] - 1), np.inf)
        for lane, env in enumerate(lanes):
            if active[lane]:
                scores[lane] = env.network.ledger.max_utilization()
        return masked_score_actions(masks, scores, active)


class GreedyCheapestPolicy(AssignmentPolicy):
    """Cost-greedy: pick the feasible node with the lowest hosting cost."""

    name = "greedy_cheapest"

    def plan_assignment(
        self, request: SFCRequest, network: SubstrateNetwork
    ) -> Optional[Tuple[int, ...]]:
        assignment = []
        for vnf_index in range(request.num_vnfs):
            candidates = hosting_candidates(request, vnf_index, network)
            if not candidates:
                return None
            vnf = request.chain.vnf_at(vnf_index)
            demand = vnf.demand_for(request.bandwidth_mbps)
            best = min(
                candidates,
                key=lambda node_id: network.node(node_id).hosting_cost(
                    demand, request.holding_time
                ),
            )
            assignment.append(best)
        return tuple(assignment)

    def select_actions(self, states=None, masks=None, greedy: bool = True) -> np.ndarray:
        """Masked argmin over each lane's per-node hosting cost."""
        lanes = self.bound_lanes
        masks = lane_masks(lanes, masks)
        context = self.bound_context
        if context is not None:
            # Same expression as ComputeNode.hosting_cost: demand . cost * t.
            scores = (context.cost_per_unit * context.demands[:, None, :]).sum(
                axis=2
            ) * context.holding[:, None]
            return masked_score_actions(masks, scores, context.active)
        requests, active = lane_requests(lanes)
        scores = np.full((len(lanes), masks.shape[1] - 1), np.inf)
        for lane, env in enumerate(lanes):
            request = requests[lane]
            if request is None:
                continue
            demand = request.chain.vnf_at(env.vnf_index).demand_array_for(
                request.bandwidth_mbps
            )
            ledger = env.network.ledger
            # Same expression as ComputeNode.hosting_cost: demand . cost * t.
            scores[lane] = (ledger.node_cost_per_unit * demand).sum(axis=1) * (
                request.holding_time
            )
        return masked_score_actions(masks, scores, active)
