"""Uniform-random placement: the weakest baseline in every comparison."""

from __future__ import annotations

from typing import Optional, Tuple

from repro.baselines.common import (
    AssignmentPolicy,
    build_if_feasible,
    hosting_candidates,
)
from repro.nfv.sfc import SFCRequest
from repro.substrate.network import SubstrateNetwork
from repro.utils.rng import RandomState, derive_seed, new_rng


class RandomPlacementPolicy(AssignmentPolicy):
    """Place each VNF on a uniformly random node that can host it.

    The policy retries a few complete assignments before giving up, which
    keeps its acceptance at low load from being pathologically bad while
    still ignoring latency and cost entirely.

    Randomness is derived *per request* from the policy seed and the
    request's intrinsic attributes, so the decision for a given request
    depends only on the seed and the substrate state — not on how many other
    requests the policy instance has seen.
    This makes one policy instance shared across K vectorized lanes bitwise
    identical to per-lane serial evaluation (and re-runs reproducible),
    which the batched-protocol equivalence suite relies on.
    """

    name = "random"

    def __init__(self, max_attempts: int = 5, seed: RandomState = None) -> None:
        if max_attempts <= 0:
            raise ValueError("max_attempts must be positive")
        self.max_attempts = max_attempts
        # Resolve an unseeded policy to a concrete root seed once, so the
        # per-request derivation below stays self-consistent for the
        # instance's lifetime (batched and reference paths must agree).
        self.seed = (
            seed if seed is not None else int(new_rng(None).integers(0, 2**31 - 1))
        )

    def _request_rng(self, request: SFCRequest):
        # Derive from intrinsic request attributes rather than the global
        # request id: ids depend on how many requests any generator created
        # before, while the attribute tuple is identical for one logical
        # request however its workload is (re)constructed.
        return new_rng(
            derive_seed(
                self.seed,
                "request",
                request.arrival_time,
                request.source_node_id,
                request.bandwidth_mbps,
                request.holding_time,
                request.num_vnfs,
            )
        )

    def plan_assignment(
        self, request: SFCRequest, network: SubstrateNetwork
    ) -> Optional[Tuple[int, ...]]:
        rng = self._request_rng(request)
        for _ in range(self.max_attempts):
            assignment = []
            feasible = True
            for vnf_index in range(request.num_vnfs):
                candidates = hosting_candidates(request, vnf_index, network)
                if not candidates:
                    feasible = False
                    break
                assignment.append(int(rng.choice(candidates)))
            if not feasible:
                return None
            if build_if_feasible(request, assignment, network) is not None:
                return tuple(assignment)
        return None
