"""Uniform-random placement: the weakest baseline in every comparison."""

from __future__ import annotations

from typing import Optional

from repro.baselines.common import build_if_feasible, hosting_candidates
from repro.nfv.placement import Placement
from repro.nfv.sfc import SFCRequest
from repro.sim.simulation import PlacementPolicy
from repro.substrate.network import SubstrateNetwork
from repro.utils.rng import RandomState, new_rng


class RandomPlacementPolicy(PlacementPolicy):
    """Place each VNF on a uniformly random node that can host it.

    The policy retries a few complete assignments before giving up, which
    keeps its acceptance at low load from being pathologically bad while
    still ignoring latency and cost entirely.
    """

    name = "random"

    def __init__(self, max_attempts: int = 5, seed: RandomState = None) -> None:
        if max_attempts <= 0:
            raise ValueError("max_attempts must be positive")
        self.max_attempts = max_attempts
        self._rng = new_rng(seed)

    def place(
        self, request: SFCRequest, network: SubstrateNetwork
    ) -> Optional[Placement]:
        for _ in range(self.max_attempts):
            assignment = []
            feasible = True
            for vnf_index in range(request.num_vnfs):
                candidates = hosting_candidates(request, vnf_index, network)
                if not candidates:
                    feasible = False
                    break
                assignment.append(int(self._rng.choice(candidates)))
            if not feasible:
                return None
            placement = build_if_feasible(request, assignment, network)
            if placement is not None:
                return placement
        return None
