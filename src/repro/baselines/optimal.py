"""Brute-force per-request optimal placement (small instances only).

The paper compares against an ILP solved with a commercial solver; offline,
no solver is available, so this module provides the equivalent "upper bound
at small scale" baseline: exhaustive enumeration of node assignments for one
request, selecting the feasible assignment that minimizes a configurable
objective (latency, cost, or a weighted mix).  The search space is
``num_candidate_nodes ** chain_length``, so the policy refuses to run beyond
a configurable budget rather than silently stalling a benchmark.
"""

from __future__ import annotations

import itertools
from typing import List, Optional, Tuple

from repro.baselines.common import (
    AssignmentPolicy,
    build_if_feasible,
    hosting_candidates,
)
from repro.nfv.placement import Placement
from repro.nfv.sfc import SFCRequest
from repro.substrate.network import SubstrateNetwork
from repro.utils.validation import check_non_negative, check_positive


class SearchSpaceTooLargeError(RuntimeError):
    """Raised when exhaustive enumeration would exceed the configured budget."""


class BruteForceOptimalPolicy(AssignmentPolicy):
    """Exhaustive per-request optimum under a latency+cost objective.

    Parameters
    ----------
    latency_weight, cost_weight:
        Objective = ``latency_weight * latency + cost_weight * cost``.
    max_assignments:
        Upper bound on the number of assignments enumerated per request;
        larger search spaces raise :class:`SearchSpaceTooLargeError` (or, when
        ``fallback_to_reject`` is set, reject the request).
    """

    name = "optimal_small"

    def __init__(
        self,
        latency_weight: float = 1.0,
        cost_weight: float = 0.0,
        max_assignments: int = 200_000,
        fallback_to_reject: bool = False,
    ) -> None:
        check_non_negative(latency_weight, "latency_weight")
        check_non_negative(cost_weight, "cost_weight")
        check_positive(max_assignments, "max_assignments")
        self.latency_weight = latency_weight
        self.cost_weight = cost_weight
        self.max_assignments = max_assignments
        self.fallback_to_reject = fallback_to_reject

    def _objective(self, placement: Placement, network: SubstrateNetwork) -> float:
        value = self.latency_weight * placement.end_to_end_latency_ms()
        if self.cost_weight:
            value += self.cost_weight * placement.total_cost(network)
        return value

    def plan_assignment(
        self, request: SFCRequest, network: SubstrateNetwork
    ) -> Optional[Tuple[int, ...]]:
        candidate_sets: List[List[int]] = []
        space = 1
        for vnf_index in range(request.num_vnfs):
            candidates = hosting_candidates(request, vnf_index, network)
            if not candidates:
                return None
            candidate_sets.append(candidates)
            space *= len(candidates)

        if space > self.max_assignments:
            if self.fallback_to_reject:
                return None
            raise SearchSpaceTooLargeError(
                f"request {request.request_id}: {space} assignments exceed the "
                f"budget of {self.max_assignments}"
            )

        best_assignment: Optional[Tuple[int, ...]] = None
        best_value = float("inf")
        for assignment in itertools.product(*candidate_sets):
            placement = build_if_feasible(request, assignment, network)
            if placement is None:
                continue
            value = self._objective(placement, network)
            if value < best_value:
                best_value = value
                best_assignment = tuple(assignment)
        return best_assignment
