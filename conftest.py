"""Pytest configuration for the repository.

Makes ``src/`` importable even when the package has not been pip-installed
(the offline environment used for the reproduction cannot build editable
wheels).  With a normal ``pip install -e .`` this file is a harmless no-op.
"""

import sys
from pathlib import Path

_SRC = Path(__file__).resolve().parent / "src"
if str(_SRC) not in sys.path:
    sys.path.insert(0, str(_SRC))
