"""Unit tests for the MLP and optimizers."""

import numpy as np
import pytest

from repro.nn.losses import MSELoss
from repro.nn.network import MLP
from repro.nn.optimizers import SGD, Adam, RMSProp, clip_gradients, get_optimizer


class TestMLPBasics:
    def test_shapes(self):
        network = MLP([4, 8, 3], seed=0)
        assert network.input_dim == 4
        assert network.output_dim == 3
        assert network.forward(np.ones(4)).shape == (3,)
        assert network.forward(np.ones((5, 4))).shape == (5, 3)

    def test_parameter_count(self):
        network = MLP([4, 8, 3], seed=0)
        assert network.parameter_count() == (4 * 8 + 8) + (8 * 3 + 3)

    def test_invalid_architecture_rejected(self):
        with pytest.raises(ValueError):
            MLP([4])
        with pytest.raises(ValueError):
            MLP([4, 0, 2])

    def test_deterministic_initialization(self):
        a = MLP([3, 5, 2], seed=42)
        b = MLP([3, 5, 2], seed=42)
        x = np.ones(3)
        assert np.allclose(a.predict(x), b.predict(x))

    def test_different_seeds_differ(self):
        a = MLP([3, 5, 2], seed=1)
        b = MLP([3, 5, 2], seed=2)
        assert not np.allclose(a.predict(np.ones(3)), b.predict(np.ones(3)))


class TestMLPTraining:
    def test_fit_batch_reduces_loss_on_regression(self):
        rng = np.random.default_rng(0)
        x = rng.uniform(-1, 1, size=(256, 3))
        y = (x[:, :1] * 2.0 - x[:, 1:2] + 0.5).reshape(-1, 1)
        network = MLP([3, 32, 1], seed=0)
        optimizer = Adam(1e-2)
        first_loss = network.fit_batch(x, y, optimizer)
        for _ in range(300):
            last_loss = network.fit_batch(x, y, optimizer)
        assert last_loss < first_loss * 0.1

    def test_target_mask_only_updates_selected_outputs(self):
        network = MLP([2, 8, 3], seed=0)
        x = np.array([[0.5, -0.5]])
        before = network.predict(x)[0].copy()
        mask = np.array([[1.0, 0.0, 0.0]])
        targets = np.array([[before[0] + 5.0, 0.0, 0.0]])
        optimizer = SGD(1e-2)
        for _ in range(50):
            network.fit_batch(x, targets, optimizer, target_mask=mask)
        after = network.predict(x)[0]
        # Output 0 must move towards its target much more than outputs 1, 2.
        assert abs(after[0] - before[0]) > 10 * abs(after[1] - before[1])

    def test_backward_requires_training_forward(self):
        network = MLP([2, 4, 1], seed=0)
        network.predict(np.ones(2))
        with pytest.raises(RuntimeError):
            network.backward(np.ones((1, 1)))


class TestTargetNetworkOps:
    def test_hard_copy(self):
        source = MLP([3, 4, 2], seed=1)
        target = MLP([3, 4, 2], seed=2)
        target.copy_from(source, tau=1.0)
        assert np.allclose(source.predict(np.ones(3)), target.predict(np.ones(3)))

    def test_soft_copy_interpolates(self):
        source = MLP([3, 4, 2], seed=1)
        target = MLP([3, 4, 2], seed=2)
        original_weight = target.layers[0].weights.copy()
        target.copy_from(source, tau=0.5)
        expected = 0.5 * source.layers[0].weights + 0.5 * original_weight
        assert np.allclose(target.layers[0].weights, expected)

    def test_architecture_mismatch_rejected(self):
        with pytest.raises(ValueError):
            MLP([3, 4, 2], seed=0).copy_from(MLP([3, 5, 2], seed=0))

    def test_clone_is_independent(self):
        network = MLP([3, 4, 2], seed=1)
        clone = network.clone(seed=0)
        assert np.allclose(network.predict(np.ones(3)), clone.predict(np.ones(3)))
        clone.layers[0].weights += 1.0
        assert not np.allclose(network.layers[0].weights, clone.layers[0].weights)

    def test_save_load_round_trip(self, tmp_path):
        network = MLP([3, 6, 2], hidden_activation="tanh", seed=3)
        path = network.save(tmp_path / "model.npz")
        loaded = MLP.load(path)
        x = np.linspace(-1, 1, 3)
        assert np.allclose(network.predict(x), loaded.predict(x))
        assert loaded.hidden_activation == "tanh"


class TestOptimizers:
    def _quadratic_step_improves(self, optimizer_factory):
        # Minimize f(w) = ||w||^2 using the optimizer on a fake gradient dict.
        weights = np.array([5.0, -3.0])
        params = {"w": weights}
        for _ in range(200):
            grads = {"w": 2.0 * params["w"]}
            optimizer_factory.step([(params, grads)])
        return np.linalg.norm(params["w"])

    def test_sgd_converges_on_quadratic(self):
        assert self._quadratic_step_improves(SGD(0.05)) < 0.05

    def test_sgd_momentum_converges(self):
        assert self._quadratic_step_improves(SGD(0.02, momentum=0.9)) < 0.05

    def test_rmsprop_converges(self):
        assert self._quadratic_step_improves(RMSProp(0.05)) < 0.2

    def test_adam_converges(self):
        assert self._quadratic_step_improves(Adam(0.1)) < 0.05

    def test_adam_state_created_per_parameter(self):
        optimizer = Adam(0.01)
        params = {"w": np.zeros(3), "b": np.zeros(1)}
        grads = {"w": np.ones(3), "b": np.ones(1)}
        optimizer.step([(params, grads)])
        assert optimizer.state_size() == 4  # two params × two moments

    def test_invalid_hyperparameters_rejected(self):
        with pytest.raises(ValueError):
            SGD(0.0)
        with pytest.raises(ValueError):
            SGD(0.1, momentum=1.5)
        with pytest.raises(ValueError):
            Adam(0.1, beta1=1.0)
        with pytest.raises(ValueError):
            RMSProp(0.1, decay=1.0)

    def test_get_optimizer_factory(self):
        assert isinstance(get_optimizer("adam"), Adam)
        assert isinstance(get_optimizer("sgd", momentum=0.5), SGD)
        assert isinstance(get_optimizer("rmsprop"), RMSProp)
        with pytest.raises(ValueError):
            get_optimizer("lbfgs")

    def test_clip_gradients_scales_down(self):
        grads = {"w": np.array([30.0, 40.0])}
        params = {"w": np.zeros(2)}
        norm = clip_gradients([(params, grads)], max_norm=5.0)
        assert norm == pytest.approx(50.0)
        assert np.linalg.norm(grads["w"]) == pytest.approx(5.0)

    def test_clip_gradients_no_change_when_small(self):
        grads = {"w": np.array([0.3, 0.4])}
        clip_gradients([({"w": np.zeros(2)}, grads)], max_norm=5.0)
        assert np.allclose(grads["w"], [0.3, 0.4])
