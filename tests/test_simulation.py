"""Integration-level tests of the online NFV simulation."""

import pytest

from repro.baselines.greedy import GreedyNearestPolicy
from repro.baselines.random_policy import RandomPlacementPolicy
from repro.nfv.placement import Placement
from repro.sim.simulation import (
    NFVSimulation,
    PlacementPolicy,
    SimulationConfig,
    run_policy_comparison,
)
from tests.conftest import build_request


class AcceptFirstNodePolicy(PlacementPolicy):
    """Test policy: always place every VNF on a fixed node."""

    name = "fixed"

    def __init__(self, node_id: int):
        self.node_id = node_id

    def place(self, request, network):
        assignment = [self.node_id] * request.num_vnfs
        placement = Placement.build(request, assignment, network)
        return placement if placement.is_feasible(network) else None


class RejectAllPolicy(PlacementPolicy):
    """Test policy: reject everything."""

    name = "reject_all"

    def place(self, request, network):
        return None


class TestSimulationLifecycle:
    def test_accepted_requests_release_after_departure(self, small_network, catalog):
        requests = [
            build_request(catalog, source=0, arrival=1.0, holding=5.0),
            build_request(catalog, source=0, arrival=2.0, holding=5.0),
        ]
        simulation = NFVSimulation(
            small_network,
            AcceptFirstNodePolicy(1),
            SimulationConfig(horizon=50.0, monitoring_interval=10.0),
        )
        result = simulation.run(requests)
        assert result.summary.accepted_requests == 2
        # After the horizon all departures have been processed.
        assert small_network.total_used().is_zero()
        assert small_network.link(0, 1).used_bandwidth == 0.0

    def test_reject_all_policy(self, small_network, catalog):
        requests = [build_request(catalog, arrival=float(i + 1)) for i in range(5)]
        simulation = NFVSimulation(small_network, RejectAllPolicy(), SimulationConfig(horizon=20.0))
        result = simulation.run(requests)
        assert result.summary.accepted_requests == 0
        assert result.summary.rejected_requests == 5
        assert result.summary.acceptance_ratio == 0.0

    def test_capacity_exhaustion_causes_rejections(self, small_network, catalog):
        # Node 1 has 8 CPUs; each request needs ~3.5 CPU there, and holding
        # times are long, so only the first two of five fit simultaneously.
        requests = [
            build_request(catalog, source=0, arrival=float(i + 1), holding=100.0, bandwidth=100.0)
            for i in range(5)
        ]
        simulation = NFVSimulation(
            small_network, AcceptFirstNodePolicy(1), SimulationConfig(horizon=50.0)
        )
        result = simulation.run(requests)
        assert 0 < result.summary.accepted_requests < 5
        assert result.summary.rejected_requests == 5 - result.summary.accepted_requests

    def test_resources_freed_allow_later_acceptance(self, small_network, catalog):
        # Two heavy requests that cannot coexist, but do not overlap in time.
        requests = [
            build_request(catalog, source=0, arrival=1.0, holding=5.0, bandwidth=300.0),
            build_request(catalog, source=0, arrival=50.0, holding=5.0, bandwidth=300.0),
        ]
        simulation = NFVSimulation(
            small_network, AcceptFirstNodePolicy(1), SimulationConfig(horizon=100.0)
        )
        result = simulation.run(requests)
        assert result.summary.accepted_requests == 2

    def test_metrics_recorded_for_accepted(self, small_network, catalog):
        requests = [build_request(catalog, source=0, arrival=1.0)]
        simulation = NFVSimulation(small_network, AcceptFirstNodePolicy(1), SimulationConfig(horizon=10.0))
        result = simulation.run(requests)
        outcome = result.collector.accepted[0]
        assert outcome.latency_ms > 0
        assert outcome.cost > 0
        assert outcome.revenue > 0

    def test_monitoring_samples_collected(self, small_network, catalog):
        simulation = NFVSimulation(
            small_network,
            AcceptFirstNodePolicy(1),
            SimulationConfig(horizon=100.0, monitoring_interval=10.0),
        )
        result = simulation.run([build_request(catalog, source=0, arrival=1.0, holding=200.0)])
        assert len(result.collector.samples) == 10
        assert result.summary.mean_edge_utilization > 0

    def test_rerunning_resets_state(self, small_network, catalog):
        simulation = NFVSimulation(small_network, AcceptFirstNodePolicy(1), SimulationConfig(horizon=10.0))
        first = simulation.run([build_request(catalog, source=0, arrival=1.0)])
        second = simulation.run([build_request(catalog, source=0, arrival=1.0)])
        assert first.summary.total_requests == second.summary.total_requests == 1

    def test_result_as_dict(self, small_network, catalog):
        simulation = NFVSimulation(small_network, AcceptFirstNodePolicy(1), SimulationConfig(horizon=10.0))
        result = simulation.run([build_request(catalog, source=0, arrival=1.0)])
        data = result.as_dict()
        assert data["policy"] == "fixed"
        assert data["horizon"] == 10.0


class TestPolicyComparison:
    def test_comparison_uses_fresh_networks(self, catalog):
        from repro.substrate.topology import linear_chain_topology

        def factory():
            return linear_chain_topology(num_edge_nodes=4, link_latency_ms=2.0, seed=7)

        requests = [build_request(catalog, source=0, arrival=float(i + 1)) for i in range(8)]
        results = run_policy_comparison(
            factory,
            [GreedyNearestPolicy(), RandomPlacementPolicy(seed=1)],
            requests,
            SimulationConfig(horizon=30.0),
        )
        assert len(results) == 2
        assert {r.policy_name for r in results} == {"greedy_nearest", "random"}
        for result in results:
            assert result.summary.total_requests == 8
