"""Tests for the process-parallel vectorized environment layer.

The backbone is the subproc-vs-sync equivalence suite: a
:class:`SubprocVecPlacementEnv` sharded over several workers must produce
*bitwise identical* trajectories — states, masks, rewards, dones, info
payloads, episode statistics, decision contexts and fault disruptions — to
the in-process :class:`VecPlacementEnv` built from the same scenarios and
seeds.  (``request_id`` is excluded: it is a process-local monotonic label,
not trajectory state.)
"""

import pickle

import numpy as np
import pytest

from repro.agents.dqn import DQNAgent, DQNConfig
from repro.baselines import standard_baselines
from repro.core.env import EnvConfig
from repro.core.subproc import (
    SubprocVecPlacementEnv,
    in_worker_process,
    make_vec_env,
    subproc_available,
)
from repro.core.training import TrainingConfig, VecTrainer
from repro.core.vecenv import VecPlacementEnv, lane_specs_from_scenarios
from repro.experiments.parallel import run_parallel
from repro.experiments.runner import (
    evaluate_agent_across_scenarios,
    evaluate_baseline_across_scenarios,
)
from repro.sim.failures import FailureConfig
from repro.workloads.scenarios import reference_scenario, scenario_grid

pytestmark = pytest.mark.skipif(
    not subproc_available(), reason="platform lacks the fork start method"
)

SEED = 7
ENV_CONFIG = EnvConfig(requests_per_episode=5)


def small_scenario(seed=2):
    return reference_scenario(
        arrival_rate=0.6, num_edge_nodes=6, horizon=80.0, seed=seed
    )


def masked_random_actions(masks, rng):
    draws = (rng.random(masks.shape[0]) * masks.sum(axis=1)).astype(int)
    return (masks.cumsum(axis=1) > draws[:, None]).argmax(axis=1)


def assert_infos_equal(sync_infos, sub_infos):
    for sync_info, sub_info in zip(sync_infos, sub_infos):
        assert set(sync_info) == set(sub_info)
        for key in sync_info:
            if key == "request_id":  # process-local label, not trajectory state
                continue
            expected, actual = sync_info[key], sub_info[key]
            if isinstance(expected, np.ndarray):
                assert np.array_equal(expected, actual), key
            else:
                assert expected == actual, (key, expected, actual)


def assert_context_equal(sync_context, sub_context):
    assert (sync_context is None) == (sub_context is None)
    if sync_context is None:
        return
    for attr in (
        "active",
        "anchor_rows",
        "demands",
        "extras",
        "budgets",
        "holding",
        "used",
        "capacity_plus_tol",
        "free_tol",
        "latency",
    ):
        assert np.array_equal(
            getattr(sync_context, attr), getattr(sub_context, attr)
        ), attr
    assert np.array_equal(sync_context.capacity, sub_context.capacity)
    assert np.array_equal(sync_context.capacity_safe, sub_context.capacity_safe)
    assert np.array_equal(sync_context.cost_per_unit, sub_context.cost_per_unit)


def run_lockstep(sync, sub, steps, rng, check_context=True):
    """Drive both environments with identical actions, asserting every payload."""
    assert np.array_equal(sync.reset(), sub.reset())
    for step in range(steps):
        sync_masks = sync.valid_action_masks()
        sub_masks = sub.valid_action_masks()
        assert np.array_equal(sync_masks, sub_masks), f"masks differ at step {step}"
        if check_context:
            assert_context_equal(
                sync.lane_decision_context(), sub.lane_decision_context()
            )
        actions = masked_random_actions(sync_masks, rng)
        sync_out = sync.step(actions)
        sub_out = sub.step(actions)
        for index, name in enumerate(("states", "rewards", "dones")):
            assert np.array_equal(
                sync_out[index], sub_out[index]
            ), f"{name} differ at step {step}"
        assert_infos_equal(sync_out[3], sub_out[3])
        assert [s.as_dict() for s in sync.lane_stats()] == [
            s.as_dict() for s in sub.lane_stats()
        ]
        assert sync.lane_failed_nodes() == sub.lane_failed_nodes()
    assert sync.episodes_completed == sub.episodes_completed


class TestTrajectoryEquivalence:
    @pytest.mark.parametrize("num_workers", [2, 3])
    def test_bitwise_equal_to_sync(self, num_workers):
        scenario = small_scenario()
        sync = VecPlacementEnv.from_scenario(
            scenario, 5, seed=SEED, env_config=ENV_CONFIG
        )
        sub = SubprocVecPlacementEnv.from_scenario(
            scenario, 5, seed=SEED, env_config=ENV_CONFIG, num_workers=num_workers
        )
        try:
            run_lockstep(sync, sub, steps=80, rng=np.random.default_rng(0))
        finally:
            sub.close()

    def test_scenario_diverse_lanes_shard_correctly(self):
        grid = scenario_grid(small_scenario(), arrival_rates=[0.4, 0.8, 1.2])
        sync = VecPlacementEnv.from_scenarios(grid, seed=SEED, env_config=ENV_CONFIG)
        sub = SubprocVecPlacementEnv.from_scenarios(
            grid, seed=SEED, env_config=ENV_CONFIG, num_workers=2
        )
        try:
            assert sub.lane_names == sync.lane_names
            run_lockstep(sync, sub, steps=60, rng=np.random.default_rng(1))
        finally:
            sub.close()

    def test_fault_injected_lanes_match(self):
        scenario = small_scenario()
        failure_config = FailureConfig(
            mean_time_to_failure=12.0, mean_time_to_repair=6.0
        )
        sync = VecPlacementEnv.from_scenario(
            scenario, 4, seed=SEED, env_config=ENV_CONFIG,
            failure_config=failure_config,
        )
        sub = SubprocVecPlacementEnv.from_scenario(
            scenario, 4, seed=SEED, env_config=ENV_CONFIG,
            failure_config=failure_config, num_workers=2,
        )
        try:
            run_lockstep(sync, sub, steps=120, rng=np.random.default_rng(2))
            disrupted = sum(stats.disrupted for stats in sub.lane_stats())
            fenced = sum(len(nodes) for nodes in sub.lane_failed_nodes())
            assert sub.episodes_completed > 0
            # The schedule is seed-derived; with MTTF=12 over these horizons
            # failures do fire — and both backends agreed on every one above.
            assert disrupted >= 0 and fenced >= 0
        finally:
            sub.close()

    def test_auto_reset_false_and_manual_lane_reset(self):
        scenario = small_scenario()
        sync = VecPlacementEnv.from_scenario(
            scenario, 3, seed=SEED, env_config=ENV_CONFIG, auto_reset=False
        )
        sub = SubprocVecPlacementEnv.from_scenario(
            scenario, 3, seed=SEED, env_config=ENV_CONFIG, auto_reset=False,
            num_workers=2,
        )
        try:
            assert np.array_equal(sync.reset(), sub.reset())
            rng = np.random.default_rng(3)
            for _ in range(60):
                masks = sync.valid_action_masks()
                assert np.array_equal(masks, sub.valid_action_masks())
                actions = masked_random_actions(masks, rng)
                s1, r1, d1, i1 = sync.step(actions)
                s2, r2, d2, i2 = sub.step(actions)
                assert np.array_equal(s1, s2)
                assert np.array_equal(r1, r2)
                assert np.array_equal(d1, d2)
                assert_infos_equal(i1, i2)
                for lane, done in enumerate(d1):
                    if done:  # no auto-reset: restart finished lanes manually
                        assert np.array_equal(
                            sync.reset_lane(lane), sub.reset_lane(lane)
                        )
            assert sync.episodes_completed == sub.episodes_completed
        finally:
            sub.close()

    def test_observe_false_returns_zero_states(self):
        scenario = small_scenario()
        sub = SubprocVecPlacementEnv.from_scenario(
            scenario, 3, seed=SEED, env_config=ENV_CONFIG, num_workers=2
        )
        try:
            states = sub.reset(observe=False)
            assert not states.any()
            masks = sub.valid_action_masks()
            states, _, _, _ = sub.step(masks.argmax(axis=1), observe=False)
            assert not states.any()
        finally:
            sub.close()


class TestBatchedConsumers:
    def test_vec_trainer_runs_on_subproc(self):
        scenario = small_scenario()
        sync = VecPlacementEnv.from_scenario(
            scenario, 4, seed=SEED, env_config=ENV_CONFIG
        )
        sub = SubprocVecPlacementEnv.from_scenario(
            scenario, 4, seed=SEED, env_config=ENV_CONFIG, num_workers=2
        )
        try:
            config = TrainingConfig(
                num_episodes=4, evaluation_interval=4, evaluation_episodes=1
            )
            dqn_config = DQNConfig(
                hidden_layers=(16,), batch_size=8, min_replay_size=8
            )

            def train(venv):
                agent = DQNAgent(
                    venv.state_dim, venv.num_actions, config=dqn_config, seed=0
                )
                return VecTrainer(venv, agent, config).train()

            sync_history = train(sync)
            sub_history = train(sub)
            assert sub_history.episode_rewards == sync_history.episode_rewards
            assert sub_history.episode_acceptance == sync_history.episode_acceptance
            assert sub_history.evaluation_rewards == sync_history.evaluation_rewards
        finally:
            sub.close()

    def test_agent_evaluation_matches_sync(self):
        grid = scenario_grid(small_scenario(), arrival_rates=[0.5, 1.0])
        probe = VecPlacementEnv.from_scenarios(grid, seed=SEED, env_config=ENV_CONFIG)
        agent = DQNAgent(
            probe.state_dim,
            probe.num_actions,
            config=DQNConfig(hidden_layers=(16,), batch_size=8, min_replay_size=8),
            seed=1,
        )
        kwargs = dict(
            episodes_per_scenario=1, seed=SEED, env_config=ENV_CONFIG
        )
        serial = evaluate_agent_across_scenarios(agent, grid, env_workers=1, **kwargs)
        sharded = evaluate_agent_across_scenarios(agent, grid, env_workers=2, **kwargs)
        assert [r.as_dict() for r in serial] == [r.as_dict() for r in sharded]

    @pytest.mark.parametrize("policy_index", [0, 1, 3])
    def test_baseline_policies_match_sync(self, policy_index):
        grid = scenario_grid(small_scenario(), arrival_rates=[0.5, 1.0, 1.4])
        policy = standard_baselines(seed=3)[policy_index]
        kwargs = dict(episodes_per_scenario=1, seed=SEED, env_config=ENV_CONFIG)
        serial = evaluate_baseline_across_scenarios(
            policy, grid, env_workers=1, **kwargs
        )
        sharded = evaluate_baseline_across_scenarios(
            policy, grid, env_workers=2, **kwargs
        )
        assert [r.as_dict() for r in serial] == [r.as_dict() for r in sharded]

    def test_policy_rebinds_to_sync_after_subproc(self):
        # The remote binding shadows select_actions on the instance; binding
        # back to an in-process venv must restore the class-level behavior.
        scenario = small_scenario()
        policy = standard_baselines(seed=3)[1]
        sub = SubprocVecPlacementEnv.from_scenario(
            scenario, 3, seed=SEED, env_config=ENV_CONFIG, num_workers=2
        )
        try:
            policy.bind_lanes(sub)
            assert "select_actions" in policy.__dict__
            sub.reset()
            actions = policy.select_actions(None, sub.valid_action_masks())
            assert actions.shape == (3,)
        finally:
            sub.close()
        sync = VecPlacementEnv.from_scenario(
            scenario, 3, seed=SEED, env_config=ENV_CONFIG
        )
        policy.bind_lanes(sync)
        assert "select_actions" not in policy.__dict__
        sync.reset()
        actions = policy.select_actions(None, sync.valid_action_masks())
        assert actions.shape == (3,)


class TestLifecycleAndFactory:
    def test_close_is_idempotent_and_releases_workers(self):
        sub = SubprocVecPlacementEnv.from_scenario(
            small_scenario(), 4, seed=SEED, env_config=ENV_CONFIG, num_workers=2
        )
        processes = list(sub._processes)
        shm_name = sub._shm.name
        sub.reset()
        sub.close()
        sub.close()  # idempotent
        assert all(not process.is_alive() for process in processes)
        from multiprocessing import shared_memory

        with pytest.raises(FileNotFoundError):
            shared_memory.SharedMemory(name=shm_name)
        with pytest.raises(RuntimeError, match="closed"):
            sub.reset()

    def test_worker_crash_surfaces_and_close_still_works(self):
        sub = SubprocVecPlacementEnv.from_scenario(
            small_scenario(), 4, seed=SEED, env_config=ENV_CONFIG, num_workers=2
        )
        try:
            sub.reset()
            sub._processes[0].terminate()
            sub._processes[0].join(timeout=5.0)
            # The error names the dead worker's lane range and last command,
            # so a crash mid-soak is diagnosable from the log line alone.
            with pytest.raises(
                RuntimeError, match=r"worker 0 \(lanes \[0:2\), last command "
            ):
                for _ in range(3):  # first command after the crash must raise
                    sub.valid_action_masks()
                    sub.step(np.zeros(4, dtype=int))
        finally:
            sub.close()

    def test_collect_rejects_unexpected_reply_tag(self):
        # Regression for the protocol desync hole RPL202 flagged: a stray
        # reply tag (stale handshake "ready", a torn pipe) must not stand in
        # for an "ok" ack — it must break the env with a diagnosable error.
        class FakeConn:
            def __init__(self, reply):
                self._reply = reply

            def recv(self):
                return self._reply

        sub = SubprocVecPlacementEnv.__new__(SubprocVecPlacementEnv)
        sub._conns = [FakeConn(("ok", 1)), FakeConn(("ready", None))]
        sub._shards = [(0, 2), (2, 4)]
        sub._last_commands = ["step", "step"]
        sub._broken = False
        with pytest.raises(
            RuntimeError,
            match=r"worker 1 \(lanes \[2:4\), last command 'step'\) sent "
            r"unexpected reply tag 'ready' \(protocol desync\)",
        ):
            sub._collect()
        assert sub._broken

    def test_second_policy_bind_rejected(self):
        # Binding another policy would hijack the first policy's proxy and
        # silently return the wrong actions; one env serves one policy.
        first, second = standard_baselines(seed=3)[:2]
        sub = SubprocVecPlacementEnv.from_scenario(
            small_scenario(), 3, seed=SEED, env_config=ENV_CONFIG, num_workers=2
        )
        try:
            first.bind_lanes(sub)
            first.bind_lanes(sub)  # rebinding the same policy is fine
            with pytest.raises(RuntimeError, match="already bound"):
                second.bind_lanes(sub)
        finally:
            sub.close()

    def test_close_unbinds_the_policy_proxy(self):
        # After the env closes, the policy must revert to its in-process
        # behavior — a later serial simulation calls policy.reset() and must
        # not touch the dead workers.
        policy = standard_baselines(seed=3)[1]
        sub = SubprocVecPlacementEnv.from_scenario(
            small_scenario(), 3, seed=SEED, env_config=ENV_CONFIG, num_workers=2
        )
        policy.bind_lanes(sub)
        sub.close()
        assert "select_actions" not in policy.__dict__
        policy.reset()  # must not raise against the closed env
        scenario = small_scenario()
        network = scenario.build_network()
        request = scenario.build_generator(network).sample_request()
        policy.place(request, network)  # per-request path works again

    def test_worker_command_error_marks_env_broken(self):
        sub = SubprocVecPlacementEnv.from_scenario(
            small_scenario(), 4, seed=SEED, env_config=ENV_CONFIG, num_workers=2
        )
        try:
            sub.reset()
            bad_actions = np.zeros(4, dtype=int)
            bad_actions[0] = 999  # out of range: worker 0 errors, worker 1 steps
            with pytest.raises(RuntimeError, match="failed"):
                sub.step(bad_actions)
            # The shards diverged; further commands must refuse to run.
            with pytest.raises(RuntimeError, match="broken"):
                sub.step(np.zeros(4, dtype=int))
        finally:
            sub.close()

    def test_context_constants_survive_close(self):
        sub = SubprocVecPlacementEnv.from_scenario(
            small_scenario(), 4, seed=SEED, env_config=ENV_CONFIG, num_workers=2
        )
        sub.reset()
        context = sub.lane_decision_context()
        assert context is not None
        capacity = context.capacity.copy()
        sub.close()
        assert np.array_equal(context.capacity, capacity)
        assert context.cost_per_unit.shape == capacity.shape
        assert np.isfinite(context.free_tol).all()

    def test_lane_space_mismatch_rejected(self):
        specs = lane_specs_from_scenarios(
            [small_scenario(), reference_scenario(num_edge_nodes=8, seed=3)],
            seed=SEED,
            env_config=ENV_CONFIG,
        )
        with pytest.raises((ValueError, RuntimeError), match="observation and action"):
            SubprocVecPlacementEnv(specs, num_workers=2)

    def test_factory_picks_backend(self):
        grid = scenario_grid(small_scenario(), arrival_rates=[0.5, 1.0])
        sync = make_vec_env(grid, seed=SEED, env_config=ENV_CONFIG, workers=1)
        assert isinstance(sync, VecPlacementEnv)
        single_lane = make_vec_env(grid[:1], seed=SEED, env_config=ENV_CONFIG, workers=4)
        assert isinstance(single_lane, VecPlacementEnv)
        sub = make_vec_env(grid, seed=SEED, env_config=ENV_CONFIG, workers=4)
        try:
            assert isinstance(sub, SubprocVecPlacementEnv)
            assert sub.num_workers == 2  # clamped to the lane count
        finally:
            sub.close()

    def test_factory_reads_env_workers_variable(self, monkeypatch):
        grid = scenario_grid(small_scenario(), arrival_rates=[0.5, 1.0])
        monkeypatch.setenv("REPRO_ENV_WORKERS", "2")
        venv = make_vec_env(grid, seed=SEED, env_config=ENV_CONFIG)
        try:
            assert isinstance(venv, SubprocVecPlacementEnv)
        finally:
            venv.close()

    def test_factory_degrades_inside_pool_workers(self, monkeypatch):
        monkeypatch.setenv("REPRO_IN_POOL_WORKER", "1")
        assert in_worker_process()
        grid = scenario_grid(small_scenario(), arrival_rates=[0.5, 1.0])
        venv = make_vec_env(grid, seed=SEED, env_config=ENV_CONFIG, workers=4)
        assert isinstance(venv, VecPlacementEnv)

    def test_factory_degrades_inside_real_pool_worker(self):
        # A task running inside the experiment pool must get the sync
        # backend even when it asks for workers.
        results = run_parallel(_backend_name_for_two_lanes, [(1,), (2,)], max_workers=2)
        assert results == ["VecPlacementEnv", "VecPlacementEnv"]

    def test_unpicklable_policy_rejected(self):
        policy = standard_baselines(seed=3)[0]
        policy.unpicklable = lambda: None  # closures cannot cross processes
        with pytest.raises((ValueError, AttributeError, pickle.PicklingError)):
            sub = SubprocVecPlacementEnv.from_scenario(
                small_scenario(), 2, seed=SEED, env_config=ENV_CONFIG, num_workers=2
            )
            try:
                sub.bind_policy(policy)
            finally:
                sub.close()


def _backend_name_for_two_lanes(task_seed):
    grid = scenario_grid(
        reference_scenario(arrival_rate=0.6, num_edge_nodes=6, horizon=80.0, seed=2),
        arrival_rates=[0.5, 1.0],
    )
    venv = make_vec_env(
        grid, seed=task_seed, env_config=EnvConfig(requests_per_episode=5), workers=4
    )
    try:
        return type(venv).__name__
    finally:
        venv.close()
