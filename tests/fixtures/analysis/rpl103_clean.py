"""RPL103 clean fixture: stable keys; transient identity sets are fine."""

_CACHE = {}


def lookup(obj):
    return _CACHE[obj.name]  # stable name key


def dedupe(objs):
    # Identity set over objects that stay referenced for the whole pass:
    # deliberately out of RPL103 scope.
    seen = {id(objs[0])}
    kept = [objs[0]]
    for obj in objs[1:]:
        if id(obj) in seen:
            continue
        seen.add(id(obj))
        kept.append(obj)
    return kept


def debug_label(obj):
    return f"{type(obj).__name__}@{id(obj):#x}"  # display only, not a key
