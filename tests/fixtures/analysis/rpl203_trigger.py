"""RPL203 trigger fixture: anchored read-only parameters mutated in place."""

import dataclasses

import numpy as np


def clobber_masks(masks, scores):
    # repro-lint: readonly=masks,scores
    masks[0] = False  # subscript store
    scores += 1.0  # augmented assignment
    return masks


def fill_via_alias(masks):
    # repro-lint: readonly=masks
    row = masks[0]
    row.fill(0)  # .fill through an alias of the parameter
    return row


def ufunc_targets(masks, out_buffer):
    # repro-lint: readonly=masks,out_buffer
    np.add.at(masks, [0, 1], 1)  # indexed in-place update
    np.minimum(masks, 1, out=out_buffer)  # out= aimed at a readonly param
    return out_buffer


def anchor_typo(masks):
    # repro-lint: readonly=maks
    return masks


@dataclasses.dataclass(frozen=True)
class FrozenRequest:
    bw: float
    sla: float


def bump_request(request: FrozenRequest):
    request.bw = 2.0  # raises FrozenInstanceError at runtime
    return request
