"""RPL203 clean fixture: anchored parameters only read; copies are mutated."""

import dataclasses

import numpy as np


def score_actions(masks, scores):
    # repro-lint: readonly=masks,scores
    masked = np.where(masks, scores, np.inf)
    return masked.argmin(axis=1)


def owned_copy(masks):
    # repro-lint: readonly=masks
    masks = masks.copy()  # rebind: the function now owns a private array
    masks[0] = False
    return masks


def derived_buffers(masks):
    # repro-lint: readonly=masks
    scratch = np.zeros_like(masks)
    scratch[0] = 1  # mutating a fresh local is not a violation
    np.minimum(masks, 1, out=scratch)
    return scratch


@dataclasses.dataclass(frozen=True)
class FrozenRequest:
    bw: float
    sla: float


def read_request(request: FrozenRequest):
    return request.bw + request.sla
