"""RPL101 fixture: module-state and unseeded RNG (one finding per line)."""

import random

import numpy as np


def draw():
    a = np.random.rand(3)  # module-state numpy RNG
    b = random.random()  # stdlib global RNG
    rng = np.random.default_rng()  # argless: OS entropy
    unseeded = random.Random()  # argless: OS entropy
    return a, b, rng, unseeded
