"""RPL107 fixture: an event enum with one member nobody handles."""

from enum import Enum


class EventType(Enum):
    ARRIVAL = "arrival"
    DEPARTURE = "departure"
    ORPHANED = "orphaned"  # no handler registers this member
    END = "end"
