"""Suppression fixture: a reasonless suppression is itself a finding.

The RPL102 below stays visible (the malformed marker suppresses nothing)
and the marker line earns an RPL002.
"""

import time


def profiled_step(kernel):
    t0 = time.perf_counter()  # repro-lint: disable=RPL102
    return kernel(), t0
