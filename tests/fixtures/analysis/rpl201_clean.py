"""RPL201 clean fixture: every escape copies at the boundary."""


class CopyingEnv:
    def __init__(self, views):
        self._views = views  # binding the registered mapping itself is fine

    def states(self):
        return self._views["states"].copy()

    def pair(self):
        return self._views["states"].copy(), self._views["rewards"].copy()

    def via_alias(self):
        views = self._views
        return views["masks"][0].copy()

    def stash(self):
        self._snapshot = self._views["states"].copy()
        return None

    def internal_use(self, actions):
        # Using views without escaping them is the whole point — no finding.
        self._views["actions"][:] = actions
