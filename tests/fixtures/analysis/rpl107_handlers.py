"""RPL107 fixture: handlers for every member except ORPHANED.

Creating an event (``Event.create(..., EventType.ORPHANED)``) must not
count as handling it.
"""

from tests.fixtures.analysis.rpl107_events_trigger import EventType


class Engine:
    def on(self, event_type, handler):
        pass


def wire(engine, sim):
    engine.on(EventType.ARRIVAL, sim.handle_arrival)
    engine.on(EventType.DEPARTURE, sim.handle_departure)


def run_loop(engine, event):
    if event.event_type is EventType.END:
        return False  # dispatch comparison counts as handling
    return True


def schedule_orphan(engine, factory):
    # An event *creation* site, deliberately not a handler.
    return factory.create(0.0, EventType.ORPHANED)
