"""RPL102 fixture: wall-clock reads (one finding per marked line)."""

import time
from datetime import datetime
from time import perf_counter as pc


def measure():
    start = time.time()  # wall clock
    mid = pc()  # aliased from-import still resolves
    stamp = datetime.now()  # datetime wall clock
    return start, mid, stamp


def default_clock(clock=None):
    return clock or time.perf_counter  # passing the clock counts too
