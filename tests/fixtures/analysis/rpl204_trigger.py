"""RPL204 trigger fixture: numpy ledger mutated, shadow read before resync.

The test configures ``pairs={"_used": "_used_py"}``,
``shadow_readers=["_replay"]`` and ``resync_methods=["_resync_all"]``.
"""


class StaleCore:
    def branch_read(self, lane, rows, demand):
        self._used[lane, rows] += demand  # ledger dirty
        if demand > 1.0:
            return self._used_py[lane]  # shadow read while dirty
        self._used_py[lane] = self._used[lane].tolist()
        return None

    def replay_while_dirty(self, lane, demand):
        self._used[lane, 0] = demand  # ledger dirty
        self._replay(lane)  # scalar replay entry point while dirty
        self._used_py[lane][0] = demand

    def dirty_through_alias(self, lane, demand):
        used = self._used[lane]  # numpy view alias
        used[0] = demand  # mutation through the alias dirties the pair
        return self._used_py[lane][0]  # stale shadow read

    def loop_skips_resync(self, lanes, rows_py):
        self._used[lanes] = 0.0  # bulk kernel write
        for i, lane in enumerate(lanes.tolist()):
            self._used_py[lane] = rows_py[i]
        # The loop resyncs only on iterations that run; the zero-trip path
        # reaches the replay with the pair still dirty.
        self._replay(0)
