"""RPL001 fixture: this module deliberately does not parse."""

def broken(:
    return None
