"""RPL105 fixture: numpy-ledger mutations missing their shadow updates."""

import numpy as np


class BrokenSoACore:
    def __init__(self, lanes, nodes):
        self._node_used = np.zeros((lanes, nodes, 3))
        self._node_used_py = self._node_used.tolist()
        self._link_used = np.zeros((lanes, 4))
        self._link_used_py = self._link_used.tolist()

    def reset_lane(self, lane):
        self._node_used[lane].fill(0.0)  # .fill without shadow rebuild

    def commit(self, lane, row, demand):
        used_row = self._node_used[lane, row]
        used_row += demand  # aliased in-place add without shadow write

    def release(self, lane, slot, bw):
        self._link_used[lane, slot] -= bw  # direct store without shadow

    def clamp(self, lane, row, fence):
        used_row = self._node_used[lane, row]
        np.maximum(used_row - fence, 0.0, out=used_row)  # out= without shadow
