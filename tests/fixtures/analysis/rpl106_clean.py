"""RPL106 clean fixture: broad catches that act, narrow catches that don't."""

import traceback


def report(conn, shard):
    try:
        shard.step()
    except Exception:
        conn.send(("error", traceback.format_exc()))  # fenced: reported


def construct(env):
    try:
        env.start()
    except Exception:
        env.close()
        raise  # re-raised


def lookup(mapping, key):
    try:
        return mapping[key]
    except KeyError:  # narrow catch may stay silent
        return None
