"""RPL102 clean fixture: the clock is injected, never read from a module."""


def measure(clock):
    start = clock()
    return clock() - start


class Budgeted:
    def __init__(self, clock):
        self._clock = clock

    def elapsed(self, since):
        return self._clock() - since
