"""Suppression fixture: annotated violations produce no findings."""

import time


def profiled_step(kernel):
    t0 = time.perf_counter()  # repro-lint: disable=RPL102 — fixture: opt-in profiling timer
    result = kernel()
    # repro-lint: disable=RPL102 — fixture: standalone comment covers the next line
    elapsed = time.perf_counter() - t0
    return result, elapsed
