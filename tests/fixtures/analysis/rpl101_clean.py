"""RPL101 clean fixture: explicit seeded generators only."""

import numpy as np


def draw(seed, rng: np.random.Generator):
    own = np.random.default_rng(seed)
    legacy = np.random.RandomState(seed)
    return own.random(3), rng.random(3), legacy.rand(3)
