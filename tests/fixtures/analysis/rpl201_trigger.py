"""RPL201 trigger fixture: raw shared-memory views escaping the class.

Every method below leaks a view of the shm-backed ``self._views`` mapping:
returned bare, returned inside a container, via a local alias chain, or
stored on an unrelated self attribute.
"""


class LeakyEnv:
    def __init__(self, views):
        self._views = views

    def states(self):
        return self._views["states"]  # raw view returned

    def pair(self):
        return self._views["states"], self._views["rewards"]  # tuple escape

    def via_alias(self):
        views = self._views
        row = views["masks"][0]
        return row  # alias chain escape

    def stash(self):
        self._snapshot = self._views["states"]  # stored raw on self
        return None

    def whole_mapping(self):
        return self._views  # the entire mapping is shm-backed
