"""RPL105 clean fixture: every ledger mutation pairs with its shadow."""

import numpy as np


class PairedSoACore:
    def __init__(self, lanes, nodes):
        self._node_used = np.zeros((lanes, nodes, 3))
        self._node_used_py = self._node_used.tolist()
        self._link_used = np.zeros((lanes, 4))
        self._link_used_py = self._link_used.tolist()

    def reset_lane(self, lane):
        self._node_used[lane].fill(0.0)
        self._node_used_py[lane] = self._node_used[lane].tolist()

    def commit(self, lane, row, demand):
        used_row = self._node_used[lane, row]
        used_row += demand
        self._node_used_py[lane][row] = used_row.tolist()

    def release(self, lane, slot, bw):
        self._link_used[lane, slot] -= bw
        self._link_used_py[lane][slot] = float(self._link_used[lane, slot])

    def teardown(self, lane, rec):
        # Calling a registered resync method counts as touching the shadow.
        self._release_record(lane, rec)
        self._link_used[lane] = 0.0

    def _release_record(self, lane, rec):
        self._link_used[lane, rec] = 0.0
        self._link_used_py[lane][rec] = 0.0

    def observe(self, lane):
        # Reads (copies) are not mutations.
        return self._node_used[lane].copy()
