"""RPL104 clean fixture: seeds route through derive_seed-style mixing."""

from repro.utils.rng import derive_seed


def lane_seeds(seed, lanes):
    return [derive_seed(seed, "lane", lane) for lane in lanes]


def lane_workload_seed(seed, lane_index, name):
    # Functions named like the sanctioned derivation helpers are exempt:
    # their bodies ARE the mixing implementation.
    return (seed * 1000003 + lane_index) % (2**31 - 1) + hash(name)
