"""RPL204 clean fixture: every path resyncs before any shadow read.

Same options as the trigger fixture: ``pairs={"_used": "_used_py"}``,
``shadow_readers=["_replay"]``, ``resync_methods=["_resync_all"]``.
"""


class SyncedCore:
    def resync_before_read(self, lane, rows, demand):
        self._used[lane, rows] += demand
        self._used_py[lane] = self._used[lane].tolist()  # resync first
        if demand > 1.0:
            return self._used_py[lane]
        return None

    def lockstep_scalars(self, lane, slot, demand):
        # Shadow-first lockstep writes keep the pair equal the whole time:
        # storing the same name to both sides never dirties the ledger.
        value = max(0.0, self._used_py[lane][slot] - demand)
        self._used_py[lane][slot] = value
        self._used[lane, slot] = value
        return self._replay(lane)

    def method_resync(self, lanes, committed):
        self._used[lanes] = committed  # bulk kernel write
        self._resync_all(lanes, committed)  # registered resync method
        self._replay(0)

    def read_only(self, lane):
        # No mutation at all: shadow reads are always safe.
        return self._used_py[lane][0] + float(self._used[lane, 0])
