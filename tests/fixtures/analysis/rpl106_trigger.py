"""RPL106 fixture: silent broad exception swallowing."""


def cleanup(resource):
    try:
        resource.close()
    except Exception:
        pass  # swallowed: close errors vanish


def drain(queue):
    try:
        return queue.pop()
    except:  # noqa: E722 - bare except, silent
        return None


def teardown(workers):
    for worker in workers:
        try:
            worker.join()
        except (ValueError, Exception):
            broken = True  # no raise, no call: still silent
    return broken
