"""RPL103 fixture: id() flowing into dict/cache keys."""

_CACHE = {}


def lookup(obj):
    return _CACHE[id(obj)]  # subscript index


def memoize(obj, value):
    _CACHE.setdefault(id(obj), value)  # dict-method key argument


def snapshot(objs):
    return {id(obj): obj.name for obj in objs}  # dict-literal key


def stack_key(attr, ledgers):
    key = (attr, tuple(id(ledger) for ledger in ledgers))  # key-named binding
    return key
