"""RPL104 fixture: ad-hoc seed arithmetic."""


def lane_seeds(seed, lanes):
    return [seed + lane for lane in lanes]  # additive derivation collides


def worker_seed(base_seed, worker):
    derived = base_seed * 1000 + worker  # multiplicative derivation
    return derived


def bump(seed):
    seed += 1  # in-place seed arithmetic
    return seed
