"""Tests for the experiment harness (configs, runners, reporting).

Figure functions are exercised at the ``smoke`` preset so the whole file runs
in a few seconds while still covering every code path the benchmarks use.
"""

import pytest

from repro.experiments.config import ExperimentConfig
from repro.experiments.figures import (
    figure_acceptance_vs_arrival,
    figure_agent_ablation,
    figure_training_convergence,
)
from repro.experiments.reporting import format_series, format_table, print_figure, print_table
from repro.experiments.runner import (
    build_reference_scenario,
    evaluate_drl_and_baselines,
    evaluate_policies,
    results_to_rows,
    train_manager,
)
from repro.experiments.tables import table_simulation_settings, table_summary_comparison
from repro.baselines import GreedyNearestPolicy, RandomPlacementPolicy


@pytest.fixture(scope="module")
def smoke_config():
    return ExperimentConfig.smoke()


@pytest.fixture(scope="module")
def trained_manager(smoke_config):
    scenario = build_reference_scenario(smoke_config)
    return scenario, train_manager(scenario, smoke_config)


class TestExperimentConfig:
    def test_presets_valid(self):
        for config in (ExperimentConfig.paper(), ExperimentConfig.fast(), ExperimentConfig.smoke()):
            assert config.training_episodes > 0
            assert len(config.arrival_rates) >= 2

    def test_fast_smaller_than_paper(self):
        assert ExperimentConfig.fast().training_episodes < ExperimentConfig.paper().training_episodes
        assert ExperimentConfig.fast().num_edge_nodes <= ExperimentConfig.paper().num_edge_nodes

    def test_manager_config_consistency(self, smoke_config):
        manager_config = smoke_config.manager_config()
        assert manager_config.training.num_episodes == smoke_config.training_episodes
        assert manager_config.env.requests_per_episode == smoke_config.requests_per_episode
        assert manager_config.dqn.min_replay_size >= manager_config.dqn.batch_size

    def test_invalid_config_rejected(self):
        with pytest.raises(ValueError):
            ExperimentConfig(arrival_rates=())


class TestRunners:
    def test_train_manager_produces_history(self, trained_manager, smoke_config):
        _, manager = trained_manager
        assert manager.is_trained
        assert len(manager.trainer.history.episode_rewards) == smoke_config.training_episodes

    def test_evaluate_policies_on_shared_trace(self, smoke_config):
        scenario = build_reference_scenario(smoke_config)
        results = evaluate_policies(
            scenario, [GreedyNearestPolicy(), RandomPlacementPolicy(seed=0)]
        )
        assert len(results) == 2
        assert results[0].summary.total_requests == results[1].summary.total_requests

    def test_evaluate_drl_and_baselines_keys(self, trained_manager, smoke_config):
        scenario, manager = trained_manager
        results = evaluate_drl_and_baselines(scenario, manager, smoke_config)
        assert "drl_dqn" in results
        assert "greedy_nearest" in results
        assert all(r.summary.total_requests > 0 for r in results.values())

    def test_results_to_rows(self, trained_manager, smoke_config):
        scenario, manager = trained_manager
        results = evaluate_drl_and_baselines(
            scenario, manager, smoke_config, include_baselines=False
        )
        rows = results_to_rows(results)
        assert len(rows) == 1
        assert set(rows[0]) >= {"policy", "acceptance_ratio", "mean_latency_ms", "total_cost"}


class TestFiguresAndTables:
    def test_training_convergence_structure(self, smoke_config):
        data = figure_training_convergence(smoke_config)
        assert data["figure"] == "fig1_training_convergence"
        assert len(data["x"]) == smoke_config.training_episodes
        assert len(data["series"]["episode_reward"]) == smoke_config.training_episodes
        assert len(data["series"]["smoothed_reward"]) == smoke_config.training_episodes

    def test_acceptance_vs_arrival_structure(self, smoke_config):
        data = figure_acceptance_vs_arrival(smoke_config)
        assert data["x"] == list(smoke_config.arrival_rates)
        assert "drl_dqn" in data["series"]
        for series in data["series"].values():
            assert len(series) == len(smoke_config.arrival_rates)
            assert all(0.0 <= v <= 1.0 for v in series)
        # The env-level sweep carries one batched-lane series per baseline.
        env_eval = data["env_eval"]
        assert len(env_eval["acceptance_ratio"]) == len(data["x"])
        baselines = env_eval["baselines"]
        assert "greedy_nearest" in baselines and "viterbi" in baselines
        for entry in baselines.values():
            assert len(entry["acceptance_ratio"]) == len(data["x"])
            assert all(0.0 <= v <= 1.0 for v in entry["acceptance_ratio"])

    def test_availability_sweep_structure(self, trained_manager, smoke_config):
        from repro.experiments.runner import availability_sweep

        scenario, manager = trained_manager
        data = availability_sweep(
            manager,
            scenario,
            smoke_config,
            mean_times_to_failure=(10.0, 100.0),
            lanes_per_point=1,
            baselines=[GreedyNearestPolicy()],
        )
        assert data["mean_times_to_failure"] == [10.0, 100.0]
        assert len(data["steady_state_availability"]) == 2
        assert set(data["series"]) == {"drl_dqn", "greedy_nearest"}
        for entry in data["series"].values():
            assert len(entry["acceptance_ratio"]) == 2
            assert len(entry["mean_disrupted"]) == 2
            assert all(v >= 0.0 for v in entry["mean_disrupted"])
        # Frequent failures (MTTF 10) disrupt at least as much as rare ones.
        drl = data["series"]["drl_dqn"]["mean_disrupted"]
        assert drl[0] >= drl[1] - 1e-9

    def test_agent_ablation_structure(self, smoke_config):
        data = figure_agent_ablation(smoke_config, variants=["dqn", "double"])
        assert data["x"] == ["dqn", "double_dqn"]
        assert len(data["series"]["mean_reward"]) == 2

    def test_table_simulation_settings(self):
        table = table_simulation_settings(ExperimentConfig.paper())
        assert table["topology"]["edge_nodes"] == 16
        assert len(table["vnf_catalog"]) == 7
        assert len(table["chain_templates"]) == 5

    def test_table_summary_comparison(self, smoke_config):
        table = table_summary_comparison(smoke_config)
        policies = [row["policy"] for row in table["rows"]]
        assert "drl_dqn" in policies
        # Rows are sorted by acceptance ratio, descending.
        ratios = [row["acceptance_ratio"] for row in table["rows"]]
        assert ratios == sorted(ratios, reverse=True)


class TestReporting:
    def test_format_table_alignment(self):
        rows = [{"a": 1, "b": "x"}, {"a": 22, "b": "yy"}]
        text = format_table(rows)
        assert "a" in text and "b" in text
        assert len(text.splitlines()) == 4

    def test_format_table_empty(self):
        assert format_table([]) == "(no rows)"

    def test_format_series(self):
        data = {
            "figure": "demo",
            "x_label": "load",
            "x": [1, 2],
            "series": {"drl": [0.9, 0.8], "random": [0.5, 0.4]},
        }
        text = format_series(data)
        assert "demo" in text and "drl" in text and "0.9" in text

    def test_print_helpers_do_not_crash(self, capsys):
        print_figure({"figure": "f", "x_label": "x", "x": [1], "series": {"s": [2.0]}})
        print_table({"table": "t", "rows": [{"a": 1}]})
        print_table({"table": "t2", "info": "no rows key"})
        captured = capsys.readouterr()
        assert "f" in captured.out and "t2" in captured.out
