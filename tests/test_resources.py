"""Unit tests for resource vectors."""

import pytest

from repro.substrate.resources import RESOURCE_DIMENSIONS, ResourceVector, aggregate


class TestConstruction:
    def test_default_is_zero(self):
        assert ResourceVector().as_tuple() == (0.0, 0.0, 0.0)

    def test_zero_constructor(self):
        assert ResourceVector.zero().is_zero()

    def test_uniform_constructor(self):
        vector = ResourceVector.uniform(3.0)
        assert vector.as_tuple() == (3.0, 3.0, 3.0)

    def test_from_dict(self):
        vector = ResourceVector.from_dict({"cpu": 2.0, "memory": 4.0})
        assert vector.cpu == 2.0
        assert vector.memory == 4.0
        assert vector.storage == 0.0

    def test_from_dict_rejects_unknown_dimension(self):
        with pytest.raises(ValueError, match="unknown resource dimensions"):
            ResourceVector.from_dict({"gpu": 1.0})

    def test_negative_component_rejected(self):
        with pytest.raises(ValueError, match="must be >= 0"):
            ResourceVector(cpu=-1.0)

    def test_non_finite_component_rejected(self):
        with pytest.raises(ValueError, match="finite"):
            ResourceVector(cpu=float("nan"))

    def test_dimension_names(self):
        assert RESOURCE_DIMENSIONS == ("cpu", "memory", "storage")


class TestArithmetic:
    def test_addition(self):
        total = ResourceVector(1, 2, 3) + ResourceVector(4, 5, 6)
        assert total.as_tuple() == (5.0, 7.0, 9.0)

    def test_subtraction_clamps_at_zero(self):
        result = ResourceVector(1, 1, 1) - ResourceVector(2, 0.5, 1)
        assert result.as_tuple() == (0.0, 0.5, 0.0)

    def test_scalar_multiplication(self):
        assert (ResourceVector(1, 2, 3) * 2).as_tuple() == (2.0, 4.0, 6.0)

    def test_right_multiplication(self):
        assert (3 * ResourceVector(1, 0, 1)).as_tuple() == (3.0, 0.0, 3.0)

    def test_negative_scaling_rejected(self):
        with pytest.raises(ValueError):
            ResourceVector(1, 1, 1) * -1

    def test_elementwise_max(self):
        result = ResourceVector(1, 5, 2).elementwise_max(ResourceVector(3, 1, 2))
        assert result.as_tuple() == (3.0, 5.0, 2.0)

    def test_aggregate(self):
        vectors = [ResourceVector(1, 1, 1)] * 3
        assert aggregate(vectors).as_tuple() == (3.0, 3.0, 3.0)

    def test_aggregate_empty(self):
        assert aggregate([]).is_zero()


class TestFitsAndDeficit:
    def test_fits_within_true(self):
        assert ResourceVector(1, 1, 1).fits_within(ResourceVector(2, 2, 2))

    def test_fits_within_false_single_dimension(self):
        assert not ResourceVector(3, 1, 1).fits_within(ResourceVector(2, 2, 2))

    def test_fits_within_exact_boundary(self):
        assert ResourceVector(2, 2, 2).fits_within(ResourceVector(2, 2, 2))

    def test_deficit_against(self):
        deficit = ResourceVector(3, 1, 5).deficit_against(ResourceVector(2, 2, 2))
        assert deficit.as_tuple() == (1.0, 0.0, 3.0)


class TestRatiosAndReductions:
    def test_utilization_against(self):
        ratios = ResourceVector(1, 2, 0).utilization_against(ResourceVector(2, 4, 8))
        assert ratios == {"cpu": 0.5, "memory": 0.5, "storage": 0.0}

    def test_utilization_with_zero_capacity_dimension(self):
        ratios = ResourceVector(1, 0, 0).utilization_against(ResourceVector(0, 4, 8))
        assert ratios["cpu"] == 0.0

    def test_max_utilization(self):
        value = ResourceVector(1, 3, 0).max_utilization_against(ResourceVector(2, 4, 8))
        assert value == pytest.approx(0.75)

    def test_mean_utilization(self):
        value = ResourceVector(1, 2, 4).mean_utilization_against(
            ResourceVector(2, 4, 8)
        )
        assert value == pytest.approx(0.5)

    def test_dot_product(self):
        assert ResourceVector(1, 2, 3).dot(ResourceVector(2, 0.5, 1)) == pytest.approx(6.0)

    def test_total(self):
        assert ResourceVector(1, 2, 3).total() == 6.0


class TestConversions:
    def test_as_dict_round_trip(self):
        vector = ResourceVector(1.5, 2.5, 3.5)
        assert ResourceVector.from_dict(vector.as_dict()) == vector

    def test_iteration_order(self):
        assert list(ResourceVector(1, 2, 3)) == [1.0, 2.0, 3.0]

    def test_almost_equal(self):
        assert ResourceVector(1, 1, 1).almost_equal(ResourceVector(1 + 1e-12, 1, 1))
        assert not ResourceVector(1, 1, 1).almost_equal(ResourceVector(1.1, 1, 1))

    def test_frozen(self):
        vector = ResourceVector(1, 1, 1)
        with pytest.raises(AttributeError):
            vector.cpu = 5.0
