"""Unit tests for the utility helpers."""

import dataclasses
from enum import Enum

import numpy as np
import pytest

from repro.utils.rng import (
    choice_without_replacement,
    derive_seed,
    exponential_sample,
    new_rng,
    spawn_rngs,
)
from repro.utils.serialization import load_json, save_json, to_jsonable
from repro.utils.validation import (
    check_in_range,
    check_non_negative,
    check_not_empty,
    check_positive,
    check_probability,
    check_type,
)


class TestRng:
    def test_new_rng_from_int_deterministic(self):
        assert new_rng(5).integers(0, 100, 10).tolist() == new_rng(5).integers(0, 100, 10).tolist()

    def test_new_rng_passthrough(self):
        generator = np.random.default_rng(0)
        assert new_rng(generator) is generator

    def test_spawn_rngs_independent(self):
        children = spawn_rngs(3, 4)
        assert len(children) == 4
        draws = [rng.integers(0, 1_000_000) for rng in children]
        assert len(set(int(d) for d in draws)) > 1

    def test_spawn_rngs_negative_count(self):
        with pytest.raises(ValueError):
            spawn_rngs(0, -1)

    def test_derive_seed_deterministic_and_label_sensitive(self):
        assert derive_seed(1, "a", 2) == derive_seed(1, "a", 2)
        assert derive_seed(1, "a") != derive_seed(1, "b")

    def test_choice_without_replacement(self):
        rng = new_rng(0)
        chosen = choice_without_replacement(rng, range(10), 5)
        assert len(chosen) == len(set(chosen)) == 5

    def test_choice_without_replacement_too_many(self):
        with pytest.raises(ValueError):
            choice_without_replacement(new_rng(0), range(3), 5)

    def test_exponential_sample_mean(self):
        rng = new_rng(1)
        samples = exponential_sample(rng, rate=2.0, size=20_000)
        assert np.mean(samples) == pytest.approx(0.5, rel=0.05)

    def test_exponential_sample_invalid_rate(self):
        with pytest.raises(ValueError):
            exponential_sample(new_rng(0), rate=0.0)


class TestValidation:
    def test_check_positive(self):
        assert check_positive(1.5, "x") == 1.5
        with pytest.raises(ValueError):
            check_positive(0.0, "x")

    def test_check_non_negative(self):
        assert check_non_negative(0.0, "x") == 0.0
        with pytest.raises(ValueError):
            check_non_negative(-0.1, "x")

    def test_check_probability(self):
        assert check_probability(0.5, "p") == 0.5
        with pytest.raises(ValueError):
            check_probability(1.1, "p")

    def test_check_in_range(self):
        assert check_in_range(5, 0, 10, "x") == 5
        with pytest.raises(ValueError):
            check_in_range(0, 0, 10, "x", inclusive=False)

    def test_check_type(self):
        assert check_type("abc", str, "x") == "abc"
        with pytest.raises(TypeError):
            check_type("abc", int, "x")

    def test_check_not_empty(self):
        assert check_not_empty([1], "x") == [1]
        with pytest.raises(ValueError):
            check_not_empty([], "x")


class Color(Enum):
    RED = "red"


@dataclasses.dataclass
class Sample:
    name: str
    values: list


class TestSerialization:
    def test_numpy_scalars_and_arrays(self):
        data = to_jsonable({"a": np.int64(3), "b": np.float64(1.5), "c": np.arange(3)})
        assert data == {"a": 3, "b": 1.5, "c": [0, 1, 2]}

    def test_dataclass_and_enum(self):
        data = to_jsonable(Sample(name="x", values=[Color.RED]))
        assert data == {"name": "x", "values": ["red"]}

    def test_nested_containers(self):
        data = to_jsonable({"outer": [{"inner": (1, 2)}]})
        assert data == {"outer": [{"inner": [1, 2]}]}

    def test_unknown_objects_stringified(self):
        class Strange:
            def __str__(self):
                return "strange"

        assert to_jsonable(Strange()) == "strange"

    def test_save_and_load_round_trip(self, tmp_path):
        payload = {"metrics": {"acceptance": 0.75}, "series": [1, 2, 3]}
        path = save_json(payload, tmp_path / "out" / "result.json")
        assert load_json(path) == payload
