"""Unit tests for the reward function."""

import pytest

from repro.core.reward import (
    RewardCalculator,
    RewardConfig,
    acceptance_focused_config,
    cost_focused_config,
    latency_focused_config,
)
from repro.nfv.placement import Placement
from tests.conftest import build_request


@pytest.fixture
def calculator():
    return RewardCalculator(RewardConfig())


class TestStepReward:
    def test_step_reward_is_negative_shaping(self, calculator, small_network, catalog):
        request = build_request(catalog, source=0)
        reward = calculator.step_reward(request, small_network, 1, added_latency_ms=3.0, vnf_index=0)
        assert reward < 0

    def test_higher_latency_is_worse(self, calculator, small_network, catalog):
        request = build_request(catalog, source=0)
        near = calculator.step_reward(request, small_network, 1, 2.0, 0)
        far = calculator.step_reward(request, small_network, 1, 20.0, 0)
        assert far < near

    def test_loaded_node_is_worse(self, calculator, small_network, catalog):
        from repro.substrate.resources import ResourceVector

        request = build_request(catalog, source=0)
        before = calculator.step_reward(request, small_network, 1, 2.0, 0)
        small_network.allocate_node(1, "hog", ResourceVector(6, 12, 80))
        after = calculator.step_reward(request, small_network, 1, 2.0, 0)
        assert after < before

    def test_zero_weights_give_zero_step_reward(self, small_network, catalog):
        calculator = RewardCalculator(
            RewardConfig(step_latency_weight=0.0, step_cost_weight=0.0, load_balance_weight=0.0)
        )
        request = build_request(catalog, source=0)
        assert calculator.step_reward(request, small_network, 1, 5.0, 0) == 0.0


class TestTerminalRewards:
    def test_acceptance_reward_positive_for_good_placement(self, calculator, small_network, catalog):
        request = build_request(catalog, source=0, sla_ms=100.0)
        placement = Placement.build(request, [1, 1], small_network)
        assert calculator.acceptance_reward(request, placement, small_network) > 0

    def test_lower_latency_placement_preferred(self, calculator, small_network, catalog):
        request = build_request(catalog, source=0, sla_ms=100.0)
        near = Placement.build(request, [0, 0], small_network)
        far = Placement.build(request, [3, 3], small_network)
        assert calculator.acceptance_reward(request, near, small_network) > (
            calculator.acceptance_reward(request, far, small_network)
        )

    def test_rejection_and_infeasibility_penalties(self, calculator, catalog):
        request = build_request(catalog)
        assert calculator.rejection_penalty(request) == -RewardConfig().reject_penalty
        assert calculator.infeasibility_penalty(request) == -RewardConfig().infeasible_penalty
        assert calculator.infeasibility_penalty(request) < calculator.rejection_penalty(request)

    def test_describe_lists_weights(self, calculator):
        description = calculator.describe()
        assert description["accept_reward"] == RewardConfig().accept_reward
        assert "latency_weight" in description


class TestRewardVariants:
    def test_latency_focused_weights(self):
        config = latency_focused_config()
        assert config.latency_weight > RewardConfig().latency_weight
        assert config.cost_weight < RewardConfig().cost_weight

    def test_cost_focused_weights(self):
        config = cost_focused_config()
        assert config.cost_weight > RewardConfig().cost_weight

    def test_acceptance_focused_weights(self):
        config = acceptance_focused_config()
        assert config.accept_reward > RewardConfig().accept_reward

    def test_invalid_weights_rejected(self):
        with pytest.raises(ValueError):
            RewardConfig(accept_reward=-1.0)
        with pytest.raises(ValueError):
            RewardConfig(cost_normalizer=0.0)

    def test_variant_changes_ordering_of_placements(self, small_network, catalog):
        # Under a cost-focused reward the cheaper-but-farther placement can win.
        request = build_request(catalog, source=0, sla_ms=200.0)
        near = Placement.build(request, [0, 0], small_network)
        far = Placement.build(request, [3, 3], small_network)
        latency_calc = RewardCalculator(latency_focused_config())
        assert latency_calc.acceptance_reward(request, near, small_network) > (
            latency_calc.acceptance_reward(request, far, small_network)
        )
