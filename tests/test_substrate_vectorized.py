"""Vectorized-vs-reference equivalence tests for the dense substrate core.

The dense routing tables, the array-backed ledger and the batched
state/mask encoders must agree exactly (up to float tolerance) with the
per-query / per-object reference implementations they replaced.  Every test
is property-style over several seeds and random topologies.
"""

from __future__ import annotations

import networkx as nx
import numpy as np
import pytest

from repro.core.action import ActionSpace
from repro.core.env import EnvConfig, VNFPlacementEnv
from repro.core.state import StateEncoder
from repro.nfv.catalog import default_catalog
from repro.nfv.placement import Placement
from repro.substrate.network import NoRouteError, SubstrateNetwork
from repro.substrate.resources import ResourceVector
from repro.substrate.topology import (
    TopologyConfig,
    metro_edge_cloud_topology,
    random_geometric_topology,
    waxman_topology,
)
from repro.workloads.generator import RequestGenerator, WorkloadConfig

SEEDS = [0, 1, 7, 42]


def random_topologies(seed):
    """A few structurally different random topologies for one seed."""
    return [
        metro_edge_cloud_topology(TopologyConfig(num_edge_nodes=8, seed=seed)),
        random_geometric_topology(num_edge_nodes=10, seed=seed),
        waxman_topology(num_edge_nodes=9, seed=seed),
    ]


def nx_graph_of(network: SubstrateNetwork) -> nx.Graph:
    graph = nx.Graph()
    graph.add_nodes_from(network.node_ids)
    for link in network.links():
        graph.add_edge(*link.endpoints, latency=link.latency_ms)
    return graph


def allocate_some_load(network: SubstrateNetwork, seed: int) -> None:
    """Occupy a random subset of nodes/links so utilizations are non-trivial."""
    rng = np.random.default_rng(seed)
    for node in network.nodes():
        if rng.random() < 0.6:
            fraction = float(rng.uniform(0.1, 0.9))
            demand = ResourceVector(
                node.capacity.cpu * fraction,
                node.capacity.memory * fraction,
                node.capacity.storage * fraction * 0.5,
            )
            node.allocate(f"load:{node.node_id}", demand)
    for link in network.links():
        if rng.random() < 0.5:
            link.reserve(
                f"flow:{link.endpoints}",
                link.bandwidth_capacity * float(rng.uniform(0.1, 0.8)),
            )


class TestDenseRoutingEquivalence:
    @pytest.mark.parametrize("seed", SEEDS)
    def test_latency_matrix_matches_networkx(self, seed):
        for network in random_topologies(seed):
            graph = nx_graph_of(network)
            reference = dict(nx.all_pairs_dijkstra_path_length(graph, weight="latency"))
            dense = network.dense_routing
            for u in network.node_ids:
                for v in network.node_ids:
                    expected = reference[u][v]
                    got = dense.latency[dense.index[u], dense.index[v]]
                    assert got == pytest.approx(expected, rel=1e-9, abs=1e-9)

    @pytest.mark.parametrize("seed", SEEDS)
    def test_reconstructed_paths_are_valid_and_optimal(self, seed):
        for network in random_topologies(seed):
            for u in network.node_ids:
                for v in network.node_ids:
                    path = network.shortest_path(u, v)
                    assert path.nodes[0] == u and path.nodes[-1] == v
                    # Every hop must be an actual substrate link ...
                    hop_latency = sum(
                        network.link(a, b).latency_ms
                        for a, b in zip(path.nodes[:-1], path.nodes[1:])
                    )
                    # ... and the walk must achieve the optimal latency.
                    assert hop_latency == pytest.approx(
                        network.latency_between(u, v), rel=1e-9, abs=1e-9
                    )

    @pytest.mark.parametrize("seed", SEEDS)
    def test_per_query_reference_agrees(self, seed):
        for network in random_topologies(seed):
            # Flip the same network into reference mode instead of rebuilding.
            network.routing = "per_query"
            try:
                pairs = [(u, v) for u in network.node_ids for v in network.node_ids]
                per_query = {pair: network.latency_between(*pair) for pair in pairs}
            finally:
                network.routing = "dense"
            for pair, expected in per_query.items():
                assert network.latency_between(*pair) == pytest.approx(
                    expected, rel=1e-9, abs=1e-9
                )

    def test_no_route_raises_in_dense_mode(self):
        from repro.substrate.geo import GeoPoint
        from repro.substrate.node import ComputeNode

        network = SubstrateNetwork()
        for node_id in range(3):
            network.add_node(
                ComputeNode(node_id, GeoPoint(40.0, -74.0), ResourceVector(1, 1, 1))
            )
        network.add_link(0, 1, 100.0, latency_ms=1.0)
        with pytest.raises(NoRouteError):
            network.latency_between(0, 2)
        with pytest.raises(NoRouteError):
            network.shortest_path(0, 2)

    def test_path_cache_uses_single_canonical_entry(self):
        network = random_geometric_topology(num_edge_nodes=8, seed=5)
        forward = network.shortest_path(1, 6)
        backward = network.shortest_path(6, 1)
        assert backward.nodes == tuple(reversed(forward.nodes))
        assert backward.latency_ms == forward.latency_ms
        assert (1, 6) in network._path_cache
        assert (6, 1) not in network._path_cache


class TestLedgerEquivalence:
    @pytest.mark.parametrize("seed", SEEDS)
    def test_ledger_mirrors_objects(self, seed):
        for network in random_topologies(seed):
            ledger = network.ledger
            allocate_some_load(network, seed)
            for node in network.nodes():
                row = ledger.node_row[node.node_id]
                assert np.allclose(ledger.node_used[row], node.used.as_array())
                assert ledger.node_alloc_count[row] == node.allocation_count
            for link in network.links():
                slot = ledger.edge_index[link.endpoints]
                assert ledger.link_used[slot] == pytest.approx(link.used_bandwidth)
            network.reset()
            assert np.all(ledger.node_used == 0.0)
            assert np.all(ledger.link_used == 0.0)

    @pytest.mark.parametrize("seed", SEEDS)
    def test_can_host_all_matches_per_node_loop(self, seed):
        rng = np.random.default_rng(seed)
        for network in random_topologies(seed):
            allocate_some_load(network, seed)
            ledger = network.ledger
            for _ in range(10):
                demand = ResourceVector(
                    float(rng.uniform(0, 40)),
                    float(rng.uniform(0, 80)),
                    float(rng.uniform(0, 400)),
                )
                vector = ledger.can_host_all(demand.as_array())
                for node in network.nodes():
                    row = ledger.node_row[node.node_id]
                    assert bool(vector[row]) == node.can_host(demand)

    @pytest.mark.parametrize("seed", SEEDS)
    def test_utilization_stats_match_object_loops(self, seed):
        for network in random_topologies(seed):
            allocate_some_load(network, seed)
            values = [
                node.max_utilization() for node in network.nodes() if node.is_edge
            ]
            mean, std = network.ledger.utilization_stats(edge_only=True)
            assert mean == pytest.approx(sum(values) / len(values))
            reference_std = (
                sum((v - sum(values) / len(values)) ** 2 for v in values)
                / len(values)
            ) ** 0.5
            assert std == pytest.approx(reference_std)
            reference_cost = sum(
                node.usage_cost_rate() for node in network.nodes()
            ) + sum(link.usage_cost_rate() for link in network.links())
            assert network.compute_cost_rate() == pytest.approx(reference_cost)


class TestEncoderAndMaskEquivalence:
    def _env_for(self, network, seed):
        generator = RequestGenerator(network, config=WorkloadConfig(seed=seed))
        return VNFPlacementEnv(
            network, generator, config=EnvConfig(requests_per_episode=12)
        )

    @pytest.mark.parametrize("seed", SEEDS)
    def test_encode_and_mask_match_reference_through_episode(self, seed):
        for network in random_topologies(seed):
            env = self._env_for(network, seed)
            rng = np.random.default_rng(seed)
            env.reset()
            done = False
            while not done:
                request = env.current_request
                vectorized_state = env.encoder.encode(
                    request, env._vnf_index, env._partial_assignment, env._partial_latency
                )
                reference_state = env.encoder.encode_reference(
                    request, env._vnf_index, env._partial_assignment, env._partial_latency
                )
                np.testing.assert_allclose(
                    vectorized_state, reference_state, rtol=1e-9, atol=1e-9
                )
                mask = env.valid_action_mask()
                reference_mask = env.actions.valid_mask_reference(
                    request,
                    env._vnf_index,
                    env._partial_assignment,
                    env._partial_latency,
                    latency_check=env.config.latency_mask_check,
                )
                np.testing.assert_array_equal(mask, reference_mask)
                choices = np.flatnonzero(mask)
                _, _, done, _ = env.step(int(rng.choice(choices)))

    @pytest.mark.parametrize("seed", SEEDS)
    def test_placement_feasibility_matches_reference(self, seed):
        catalog = default_catalog()
        for network in random_topologies(seed):
            generator = RequestGenerator(network, config=WorkloadConfig(seed=seed))
            rng = np.random.default_rng(seed)
            allocate_some_load(network, seed + 1)
            node_ids = network.node_ids
            for index in range(25):
                request = generator.sample_request(arrival_time=float(index))
                assignment = [
                    int(rng.choice(node_ids)) for _ in range(request.num_vnfs)
                ]
                placement = Placement.build(request, assignment, network)
                assert placement.is_feasible(network) == (
                    placement.is_feasible_reference(network)
                )
                assert placement.transport_cost(network) == pytest.approx(
                    sum(
                        network.link(u, v).transport_cost(
                            request.bandwidth_mbps, request.holding_time
                        )
                        for segment in placement.segments
                        for u, v in segment.path.links()
                    )
                )


class TestHeapDepartures:
    def test_departed_placements_release_in_time_order(self):
        network = metro_edge_cloud_topology(TopologyConfig(num_edge_nodes=8, seed=11))
        generator = RequestGenerator(network, config=WorkloadConfig(seed=11))
        env = VNFPlacementEnv(
            network, generator, config=EnvConfig(requests_per_episode=40)
        )
        rng = np.random.default_rng(11)
        env.reset()
        done = False
        while not done:
            mask = env.valid_action_mask()
            choices = np.flatnonzero(mask)
            _, _, done, _ = env.step(int(rng.choice(choices)))
            # Heap invariant: earliest departure is always at the root.
            if env._active:
                times = [entry[0] for entry in env._active]
                assert env._active[0][0] == min(times)
        if env.stats.accepted:
            assert network.total_used().total() >= 0.0
        # Releasing far in the future drains the heap completely.
        env._release_departed(float("inf"))
        assert not env._active
        assert network.total_used().is_zero()
