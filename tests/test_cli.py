"""Tests for the experiment command-line interface."""

import json

import pytest

from repro.experiments.cli import EXPERIMENTS, build_parser, main, resolve_config, run_experiment
from repro.experiments.config import ExperimentConfig


class TestRegistryAndConfig:
    def test_registry_covers_all_tables_and_figures(self):
        assert {"table1", "table2"} <= set(EXPERIMENTS)
        assert {f"fig{i}" for i in range(1, 8)} <= set(EXPERIMENTS)
        assert {"ablation-reward", "ablation-agents"} <= set(EXPERIMENTS)

    def test_resolve_config_presets(self):
        assert isinstance(resolve_config("fast"), ExperimentConfig)
        assert resolve_config("smoke").training_episodes < resolve_config("paper").training_episodes
        with pytest.raises(ValueError):
            resolve_config("huge")

    def test_unknown_experiment_rejected(self):
        with pytest.raises(ValueError):
            run_experiment("fig99", ExperimentConfig.smoke(), quiet=True)


class TestParser:
    def test_list_command_parses(self):
        args = build_parser().parse_args(["list"])
        assert args.command == "list"

    def test_run_command_defaults(self):
        args = build_parser().parse_args(["run", "fig2"])
        assert args.command == "run"
        assert args.experiment == "fig2"
        assert args.preset == "fast"

    def test_invalid_preset_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["run", "fig2", "--preset", "enormous"])


class TestExecution:
    def test_list_main(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "fig2" in out and "table2" in out

    def test_run_table1_smoke(self, capsys, tmp_path):
        output = tmp_path / "table1.json"
        code = main(["run", "table1", "--preset", "smoke", "--output", str(output)])
        assert code == 0
        assert output.exists()
        data = json.loads(output.read_text())
        assert data["table"] == "table1_simulation_settings"

    def test_run_unknown_experiment_returns_error_code(self, capsys):
        assert main(["run", "fig99", "--preset", "smoke"]) == 2
        assert "error" in capsys.readouterr().err

    def test_run_fig1_smoke_quiet(self, tmp_path):
        data = run_experiment(
            "fig1", ExperimentConfig.smoke(), output=tmp_path / "fig1.json", quiet=True
        )
        assert data["figure"] == "fig1_training_convergence"
        assert (tmp_path / "fig1.json").exists()
