"""Unit tests for arrival processes."""

import numpy as np
import pytest

from repro.sim.arrivals import (
    DeterministicProcess,
    DiurnalProcess,
    MMPPProcess,
    PoissonProcess,
    make_arrival_process,
)


class TestPoisson:
    def test_arrivals_sorted_and_within_horizon(self):
        process = PoissonProcess(rate=1.0, seed=3)
        times = process.arrivals_until(100.0)
        assert all(t <= 100.0 for t in times)
        assert times == sorted(times)
        assert len(times) > 0

    def test_empirical_rate_close_to_nominal(self):
        process = PoissonProcess(rate=2.0, seed=5)
        times = process.arrivals_until(2000.0)
        empirical = len(times) / 2000.0
        assert empirical == pytest.approx(2.0, rel=0.1)

    def test_deterministic_with_seed(self):
        a = PoissonProcess(rate=1.0, seed=9).arrivals_until(50.0)
        b = PoissonProcess(rate=1.0, seed=9).arrivals_until(50.0)
        assert a == b

    def test_zero_rate_rejected(self):
        with pytest.raises(ValueError):
            PoissonProcess(rate=0.0)

    def test_mean_rate(self):
        assert PoissonProcess(rate=0.7).mean_rate() == 0.7


def _biased_mmpp_arrivals(low_rate, high_rate, mean_low, mean_high, seed, horizon):
    """The pre-fix MMPP sampler (kept here as a reference for the rate test).

    It keeps inter-arrivals sampled at the previous phase's rate even when
    they cross the phase boundary, so arrivals entering a burst phase are
    still drawn at the calm rate (and vice versa) — biasing the empirical
    rate towards the longer-lived phase's rate.
    """
    from repro.utils.rng import exponential_sample, new_rng

    rng = new_rng(seed)
    times = []
    time = 0.0
    in_burst = False
    phase_end = float(exponential_sample(rng, 1.0 / mean_low))
    while time <= horizon:
        rate = high_rate if in_burst else low_rate
        time += float(exponential_sample(rng, rate))
        while time > phase_end:
            in_burst = not in_burst
            mean_duration = mean_high if in_burst else mean_low
            phase_end += float(exponential_sample(rng, 1.0 / mean_duration))
        if time > horizon:
            break
        times.append(time)
    return times


class TestMMPP:
    def test_arrivals_within_horizon(self):
        process = MMPPProcess(low_rate=0.5, high_rate=3.0, seed=2)
        times = process.arrivals_until(500.0)
        assert all(0 < t <= 500.0 for t in times)
        assert times == sorted(times)

    def test_mean_rate_between_phases(self):
        process = MMPPProcess(low_rate=1.0, high_rate=4.0, mean_low_duration=100.0, mean_high_duration=100.0)
        assert process.mean_rate() == pytest.approx(2.5)

    def test_high_below_low_rejected(self):
        with pytest.raises(ValueError):
            MMPPProcess(low_rate=2.0, high_rate=1.0)

    def test_empirical_rate_matches_mean_rate_asymmetric(self):
        # Short phases relative to the calm inter-arrival time make the
        # phase-boundary handling dominant: a sampler that carries the calm
        # rate into burst phases misses a large share of burst arrivals.
        low, high, mean_low, mean_high = 0.5, 4.0, 20.0, 5.0
        horizon = 50_000.0
        process = MMPPProcess(
            low, high, mean_low_duration=mean_low, mean_high_duration=mean_high, seed=0
        )
        nominal = process.mean_rate()
        assert nominal == pytest.approx((0.5 * 20.0 + 4.0 * 5.0) / 25.0)
        empirical = len(process.arrivals_until(horizon)) / horizon
        assert empirical == pytest.approx(nominal, rel=0.06)

    def test_pre_fix_sampler_fails_the_rate_check(self):
        # The biased reference sampler (arrivals kept at the previous phase's
        # rate across boundaries) lands far outside the tolerance the fixed
        # sampler meets — demonstrating the rate test has teeth.
        low, high, mean_low, mean_high = 0.5, 4.0, 20.0, 5.0
        horizon = 50_000.0
        nominal = (low * mean_low + high * mean_high) / (mean_low + mean_high)
        biased = (
            len(_biased_mmpp_arrivals(low, high, mean_low, mean_high, 0, horizon))
            / horizon
        )
        assert abs(biased - nominal) / nominal > 0.10

    def test_burstier_than_poisson(self):
        # The variance of per-window counts should exceed Poisson's (≈ mean).
        process = MMPPProcess(
            low_rate=0.2, high_rate=5.0, mean_low_duration=50.0, mean_high_duration=50.0, seed=7
        )
        times = np.array(process.arrivals_until(5000.0))
        counts, _ = np.histogram(times, bins=np.arange(0, 5001, 50))
        assert counts.var() > counts.mean() * 1.5


class TestDiurnal:
    def test_rate_oscillates(self):
        process = DiurnalProcess(base_rate=1.0, amplitude=0.5, period=100.0)
        peak = process.rate_at(25.0)
        trough = process.rate_at(75.0)
        assert peak == pytest.approx(1.5, rel=1e-6)
        assert trough == pytest.approx(0.5, rel=1e-6)

    def test_arrivals_follow_daily_profile(self):
        process = DiurnalProcess(base_rate=2.0, amplitude=0.8, period=200.0, seed=4)
        times = np.array(process.arrivals_until(2000.0))
        phase = np.mod(times, 200.0)
        first_half = np.sum(phase < 100.0)   # rising/high part of the sinusoid
        second_half = np.sum(phase >= 100.0)
        assert first_half > second_half

    def test_invalid_amplitude_rejected(self):
        with pytest.raises(ValueError):
            DiurnalProcess(base_rate=1.0, amplitude=1.5)


class TestDeterministicAndFactory:
    def test_deterministic_spacing(self):
        times = DeterministicProcess(interval=2.0).arrivals_until(10.0)
        assert times == [2.0, 4.0, 6.0, 8.0, 10.0]

    def test_factory_kinds(self):
        assert isinstance(make_arrival_process("poisson", 1.0), PoissonProcess)
        assert isinstance(make_arrival_process("mmpp", 1.0), MMPPProcess)
        assert isinstance(make_arrival_process("diurnal", 1.0), DiurnalProcess)
        assert isinstance(make_arrival_process("deterministic", 0.5), DeterministicProcess)

    def test_factory_unknown_kind(self):
        with pytest.raises(ValueError):
            make_arrival_process("weibull", 1.0)
