"""Unit tests for the geographic/latency model."""

import math

import pytest

from repro.substrate.geo import (
    CITY_COORDINATES,
    GeoPoint,
    centroid,
    haversine_km,
    propagation_latency_ms,
    random_points_near,
)


class TestGeoPoint:
    def test_valid_construction(self):
        point = GeoPoint(40.7, -74.0)
        assert point.as_tuple() == (40.7, -74.0)

    def test_latitude_bounds(self):
        with pytest.raises(ValueError):
            GeoPoint(91.0, 0.0)
        with pytest.raises(ValueError):
            GeoPoint(-91.0, 0.0)

    def test_longitude_bounds(self):
        with pytest.raises(ValueError):
            GeoPoint(0.0, 181.0)

    def test_distance_to_self_is_zero(self):
        point = GeoPoint(40.0, -74.0)
        assert point.distance_km(point) == pytest.approx(0.0)


class TestHaversine:
    def test_known_distance_new_york_to_los_angeles(self):
        distance = haversine_km(
            CITY_COORDINATES["new_york"], CITY_COORDINATES["los_angeles"]
        )
        # Great-circle distance is roughly 3 940 km.
        assert 3800 < distance < 4100

    def test_symmetry(self):
        a, b = CITY_COORDINATES["chicago"], CITY_COORDINATES["miami"]
        assert haversine_km(a, b) == pytest.approx(haversine_km(b, a))

    def test_short_distance_positive(self):
        a = GeoPoint(40.0, -74.0)
        b = GeoPoint(40.01, -74.0)
        assert 1.0 < haversine_km(a, b) < 1.3


class TestPropagationLatency:
    def test_includes_hop_overhead(self):
        point = GeoPoint(40.0, -74.0)
        assert propagation_latency_ms(point, point) == pytest.approx(0.35)

    def test_grows_with_distance(self):
        near = propagation_latency_ms(
            CITY_COORDINATES["new_york"], CITY_COORDINATES["newark"]
        )
        far = propagation_latency_ms(
            CITY_COORDINATES["new_york"], CITY_COORDINATES["seattle"]
        )
        assert far > near

    def test_cross_country_latency_in_plausible_range(self):
        latency = propagation_latency_ms(
            CITY_COORDINATES["new_york"], CITY_COORDINATES["san_francisco"]
        )
        # ~4100 km * 1.3 stretch * 5 us/km ≈ 27 ms one way.
        assert 20.0 < latency < 40.0

    def test_invalid_stretch_rejected(self):
        with pytest.raises(ValueError):
            propagation_latency_ms(
                CITY_COORDINATES["new_york"],
                CITY_COORDINATES["boston"],
                path_stretch=0.0,
            )


class TestRandomPointsNear:
    def test_count_and_radius(self):
        center = CITY_COORDINATES["chicago"]
        points = random_points_near(center, 50, radius_km=30.0, seed=5)
        assert len(points) == 50
        for point in points:
            assert center.distance_km(point) <= 31.0  # small numerical slack

    def test_deterministic_with_seed(self):
        center = CITY_COORDINATES["dallas"]
        first = random_points_near(center, 5, 20.0, seed=42)
        second = random_points_near(center, 5, 20.0, seed=42)
        assert [p.as_tuple() for p in first] == [p.as_tuple() for p in second]

    def test_zero_count(self):
        assert random_points_near(CITY_COORDINATES["boston"], 0, 10.0, seed=1) == []

    def test_negative_count_rejected(self):
        with pytest.raises(ValueError):
            random_points_near(CITY_COORDINATES["boston"], -1, 10.0)

    def test_invalid_radius_rejected(self):
        with pytest.raises(ValueError):
            random_points_near(CITY_COORDINATES["boston"], 3, 0.0)


class TestCentroid:
    def test_centroid_of_single_point(self):
        point = GeoPoint(10.0, 20.0)
        assert centroid([point]).as_tuple() == (10.0, 20.0)

    def test_centroid_of_two_points(self):
        result = centroid([GeoPoint(0.0, 0.0), GeoPoint(10.0, 20.0)])
        assert result.as_tuple() == (5.0, 10.0)

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            centroid([])
