"""CFG construction and worklist-fixpoint unit tests.

Each test builds a small function, lowers it with :func:`build_cfg`, runs
:class:`ReachingDefinitions` to a fixpoint and asserts the facts *at* a
specific statement — the join-point corner cases the flow-sensitive rules
depend on: loop back-edges (zero-trip paths), try/finally routing, early
return inside ``with``, and boolean short-circuit decomposition.
"""

from __future__ import annotations

import ast
import textwrap

import pytest

from repro.analysis import (
    ReachingDefinitions,
    build_cfg,
    defs_at,
    run_forward,
)


def fn_node(source: str) -> ast.FunctionDef:
    tree = ast.parse(textwrap.dedent(source))
    for node in ast.walk(tree):
        if isinstance(node, ast.FunctionDef):
            return node
    raise AssertionError("no function in source")


def analyze(source: str):
    fn = fn_node(source)
    cfg = build_cfg(fn)
    analysis = ReachingDefinitions(fn)
    in_states = run_forward(cfg, analysis)
    return fn, cfg, analysis, in_states


def state_before(cfg, analysis, in_states, node):
    """Replay the block prefix so the state is exact at ``node``."""
    block = cfg.block_of(node)
    assert block is not None, "node not placed in any block"
    assert block.id in in_states, "node's block is unreachable"
    state = in_states[block.id]
    for elem in block.elems:
        if elem is node:
            return state
        state = analysis.transfer(elem, state)
    raise AssertionError("node not found among its block's elements")


def find_stmt(fn, kind, index=0):
    found = sorted(
        (node for node in ast.walk(fn) if isinstance(node, kind)),
        key=lambda node: (node.lineno, node.col_offset),
    )
    return found[index]


class TestLoopBackEdges:
    def test_for_join_sees_zero_trip_and_loop_definitions(self):
        fn, cfg, analysis, states = analyze(
            """
            def f(xs):
                x = 1
                for i in xs:
                    x = 2
                return x
            """
        )
        ret = find_stmt(fn, ast.Return)
        state = state_before(cfg, analysis, states, ret)
        # Both the pre-loop def (zero-trip path) and the body def (one or
        # more iterations) reach the statement after the loop.
        assert defs_at(state, "x") == frozenset({3, 5})
        # The loop target is (re)bound at the For head each arrival.
        assert defs_at(state, "i") == frozenset({4})

    def test_while_body_join_sees_its_own_back_edge(self):
        fn, cfg, analysis, states = analyze(
            """
            def f(n):
                x = 1
                while n > 0:
                    use(x)
                    x = 2
                return x
            """
        )
        use = find_stmt(fn, ast.Expr)
        state = state_before(cfg, analysis, states, use)
        # First iteration sees the initial def, later iterations the body's
        # redefinition flowing around the back-edge.
        assert defs_at(state, "x") == frozenset({3, 6})
        ret = find_stmt(fn, ast.Return)
        assert defs_at(
            state_before(cfg, analysis, states, ret), "x"
        ) == frozenset({3, 6})

    def test_break_skips_rest_of_body(self):
        fn, cfg, analysis, states = analyze(
            """
            def f(xs):
                x = 1
                for i in xs:
                    if i:
                        break
                    x = 2
                return x
            """
        )
        ret = find_stmt(fn, ast.Return)
        state = state_before(cfg, analysis, states, ret)
        # break arrives at the after-block before x = 2 on its path, but the
        # non-break path contributes the redefinition on a later arrival.
        assert defs_at(state, "x") == frozenset({3, 7})


class TestTryFinally:
    def test_handler_and_body_definitions_join_in_finally(self):
        fn, cfg, analysis, states = analyze(
            """
            def f():
                try:
                    x = 2
                    risky()
                except ValueError:
                    x = 3
                finally:
                    log(x)
                return x
            """
        )
        log_stmt = find_stmt(fn, ast.Expr, index=1)  # log(x)
        state = state_before(cfg, analysis, states, log_stmt)
        assert defs_at(state, "x") == frozenset({4, 7})
        ret = find_stmt(fn, ast.Return)
        assert defs_at(
            state_before(cfg, analysis, states, ret), "x"
        ) == frozenset({4, 7})

    def test_return_under_finally_routes_through_finally_to_exit(self):
        fn, cfg, analysis, states = analyze(
            """
            def f(flag):
                x = 1
                try:
                    if flag:
                        return 10
                    x = 2
                finally:
                    cleanup()
                return x
            """
        )
        cleanup = find_stmt(fn, ast.Expr)  # cleanup()
        fin_block = cfg.block_of(cleanup)
        # The finally exit fans out to BOTH the function exit (completing
        # the in-flight return) and the fall-through after-block.
        assert cfg.exit in fin_block.succs
        ret = find_stmt(fn, ast.Return, index=1)  # return x
        after_block = cfg.block_of(ret)
        assert any(
            succ == after_block.id or succ in (
                b.id for b in cfg.blocks.values()
                if after_block.id in b.succs
            )
            for succ in fin_block.succs
        )
        # The trailing return is reachable and sees both defs of x: the
        # pre-try one (exception raised before x = 2, swallowed… no — the
        # exceptional edge leaves the *test* block whose out-state still
        # holds the line-3 def) and the normal-completion one.
        state = state_before(cfg, analysis, states, ret)
        assert defs_at(state, "x") == frozenset({3, 7})

    def test_raise_in_try_reaches_finally_not_after(self):
        fn, cfg, analysis, states = analyze(
            """
            def f():
                try:
                    raise ValueError("boom")
                finally:
                    cleanup()
            """
        )
        raise_stmt = find_stmt(fn, ast.Raise)
        cleanup = find_stmt(fn, ast.Expr)
        raise_block = cfg.block_of(raise_stmt)
        fin_block = cfg.block_of(cleanup)
        assert fin_block.id in raise_block.succs
        # The raise continues outward after the finally body runs.
        assert cfg.exit in fin_block.succs


class TestWithAndEarlyReturn:
    def test_early_return_inside_with_flows_to_exit(self):
        fn, cfg, analysis, states = analyze(
            """
            def f(path, flag):
                with open(path) as fh:
                    if flag:
                        return fh
                    data = fh.read()
                return data
            """
        )
        early = find_stmt(fn, ast.Return, index=0)
        early_block = cfg.block_of(early)
        assert cfg.exit in early_block.succs
        final = find_stmt(fn, ast.Return, index=1)
        state = state_before(cfg, analysis, states, final)
        # Only the non-returning arm defines data; the with binding of fh
        # (line 3) reaches everything in the body.
        assert defs_at(state, "data") == frozenset({6})
        assert defs_at(state, "fh") == frozenset({3})


class TestShortCircuit:
    def _cond_blocks(self, fn, cfg):
        test = find_stmt(fn, ast.If).test
        first = cfg.block_of(test.values[0])
        second = cfg.block_of(test.values[-1])
        assert first is not None and second is not None
        return test, first, second

    def test_and_false_arm_skips_second_operand(self):
        fn, cfg, analysis, states = analyze(
            """
            def f(a, b):
                if a and expensive(b):
                    x = 1
                else:
                    x = 2
                return x
            """
        )
        _, first, second = self._cond_blocks(fn, cfg)
        # `a` gets its own block; one successor evaluates the second
        # operand, the other short-circuits straight past it.
        assert first.id != second.id
        assert second.id in first.succs
        skip = [s for s in first.succs if s != second.id]
        assert len(skip) == 1
        # The short-circuit edge reaches the else-arm without passing
        # through the second operand's block.
        else_assign = find_stmt(fn, ast.Assign, index=1)  # x = 2
        else_block = cfg.block_of(else_assign)
        assert skip[0] == else_block.id
        # Both arms still converge: the return sees both definitions.
        ret = find_stmt(fn, ast.Return)
        state = state_before(cfg, analysis, states, ret)
        assert defs_at(state, "x") == frozenset({4, 6})

    def test_or_true_arm_skips_second_operand(self):
        fn, cfg, analysis, states = analyze(
            """
            def f(a, b):
                if a or expensive(b):
                    x = 1
                else:
                    x = 2
                return x
            """
        )
        _, first, second = self._cond_blocks(fn, cfg)
        assert second.id in first.succs
        skip = [s for s in first.succs if s != second.id]
        then_assign = find_stmt(fn, ast.Assign, index=0)  # x = 1
        then_block = cfg.block_of(then_assign)
        # For `or`, the short-circuit edge goes to the THEN arm.
        assert skip == [then_block.id]
        ret = find_stmt(fn, ast.Return)
        state = state_before(cfg, analysis, states, ret)
        assert defs_at(state, "x") == frozenset({4, 6})


class TestFixpointMachinery:
    def test_unreachable_blocks_have_no_in_state(self):
        fn, cfg, analysis, states = analyze(
            """
            def f(xs):
                for i in xs:
                    continue
                return 0
            """
        )
        # Every recorded in-state belongs to a real block, entry included.
        assert cfg.entry in states
        assert set(states) <= set(cfg.blocks)

    def test_build_cfg_rejects_non_function(self):
        with pytest.raises(TypeError):
            build_cfg(ast.parse("x = 1").body[0])

    def test_rpo_starts_at_entry_and_covers_reachable_blocks(self):
        fn, cfg, analysis, states = analyze(
            """
            def f(n):
                while n:
                    n -= 1
                return n
            """
        )
        order = cfg.rpo()
        assert order[0] == cfg.entry
        assert len(order) == len(set(order))
        assert set(order) <= set(cfg.blocks)
