"""Unit tests for the RL agents (DQN family, REINFORCE, A2C, tabular Q).

The heavier learning checks use a tiny deterministic "corridor" MDP so that
they stay fast while still verifying that each algorithm's update actually
improves its policy.
"""

import numpy as np
import pytest

from repro.agents.actor_critic import A2CConfig, ActorCriticAgent
from repro.agents.dqn import DQNAgent, DQNConfig, make_dqn_variant
from repro.agents.policy_gradient import ReinforceAgent, ReinforceConfig
from repro.agents.qlearning import TabularQLearningAgent


class TwoArmedBandit:
    """One-step environment: action 1 pays +1, action 0 pays 0."""

    state_dim = 2
    num_actions = 2

    def __init__(self):
        self.state = np.array([0.5, 0.5])

    def reset(self):
        return self.state

    def step(self, action):
        reward = 1.0 if action == 1 else 0.0
        return self.state, reward, True, {}


class CorridorMDP:
    """A 4-cell corridor: move right (+) reaches the goal, left does not."""

    length = 4
    state_dim = 4
    num_actions = 2  # 0 = left, 1 = right

    def __init__(self):
        self.position = 0

    def _observe(self):
        state = np.zeros(self.length)
        state[self.position] = 1.0
        return state

    def reset(self):
        self.position = 0
        return self._observe()

    def step(self, action):
        if action == 1:
            self.position += 1
        else:
            self.position = max(0, self.position - 1)
        done = self.position >= self.length - 1
        reward = 1.0 if done else -0.05
        return self._observe(), reward, done, {}


def run_episodes(agent, env, episodes, learn=True, greedy=False, max_steps=30):
    """Tiny training loop shared by the learning tests."""
    returns = []
    for _ in range(episodes):
        state = env.reset()
        total = 0.0
        for _ in range(max_steps):
            action = agent.select_action(state, greedy=greedy)
            next_state, reward, done, _ = env.step(action)
            if learn:
                agent.observe(state, action, reward, next_state, done)
                agent.update()
            state = next_state
            total += reward
            if done:
                break
        if learn:
            agent.end_episode()
        returns.append(total)
    return returns


def fast_dqn_config(**overrides):
    base = dict(
        hidden_layers=(16, 16),
        learning_rate=5e-3,
        batch_size=16,
        min_replay_size=16,
        replay_capacity=2000,
        target_update_interval=50,
        epsilon_start=1.0,
        epsilon_end=0.05,
        epsilon_decay_steps=300,
    )
    base.update(overrides)
    return DQNConfig(**base)


class TestDQNMechanics:
    def test_invalid_config_rejected(self):
        with pytest.raises(ValueError):
            DQNConfig(min_replay_size=8, batch_size=16)
        with pytest.raises(ValueError):
            DQNConfig(discount=1.5)

    def test_variant_names(self):
        assert make_dqn_variant("dqn", 4, 3, seed=0).name == "dqn"
        assert make_dqn_variant("double", 4, 3, seed=0).name == "double_dqn"
        assert make_dqn_variant("dueling", 4, 3, seed=0).name == "dueling_dqn"
        assert make_dqn_variant("dueling_double", 4, 3, seed=0).name == "dueling_double_dqn"
        with pytest.raises(ValueError):
            make_dqn_variant("rainbow", 4, 3)

    def test_q_values_shape(self):
        agent = DQNAgent(4, 3, config=fast_dqn_config(), seed=0)
        assert agent.q_values(np.zeros(4)).shape == (3,)
        assert agent.batch_q_values(np.zeros((5, 4))).shape == (5, 3)

    def test_dueling_head_shape(self):
        agent = DQNAgent(4, 3, config=fast_dqn_config(dueling=True), seed=0)
        assert agent.online_network.output_dim == 4  # value + 3 advantages
        assert agent.q_values(np.zeros(4)).shape == (3,)

    def test_no_update_before_min_replay(self):
        agent = DQNAgent(2, 2, config=fast_dqn_config(), seed=0)
        agent.observe(np.zeros(2), 0, 1.0, np.zeros(2), True)
        assert agent.update() == {}

    def test_update_returns_diagnostics_after_warmup(self):
        agent = DQNAgent(2, 2, config=fast_dqn_config(), seed=0)
        for _ in range(20):
            agent.observe(np.zeros(2), 0, 1.0, np.zeros(2), True)
        diagnostics = agent.update()
        assert "loss" in diagnostics and "mean_td_error" in diagnostics

    def test_state_width_validated(self):
        agent = DQNAgent(3, 2, config=fast_dqn_config(), seed=0)
        with pytest.raises(ValueError):
            agent.select_action(np.zeros(5))

    def test_action_mask_respected(self):
        agent = DQNAgent(3, 4, config=fast_dqn_config(), seed=0)
        mask = np.array([False, False, True, False])
        for _ in range(20):
            assert agent.select_action(np.zeros(3), mask=mask) == 2

    def test_save_load_round_trip(self, tmp_path):
        agent = DQNAgent(3, 2, config=fast_dqn_config(), seed=0)
        path = agent.save(tmp_path / "dqn.npz")
        q_before = agent.q_values(np.ones(3))
        other = DQNAgent(3, 2, config=fast_dqn_config(), seed=5)
        other.load(path)
        assert np.allclose(other.q_values(np.ones(3)), q_before)

    def test_target_network_sync_interval(self):
        config = fast_dqn_config(target_update_interval=3)
        agent = DQNAgent(2, 2, config=config, seed=0)
        rng = np.random.default_rng(7)
        for _ in range(64):
            agent.observe(rng.random(2), 0, 1.0, rng.random(2), False)
        for _ in range(3):
            agent.update()
        # After a sync the target equals the online network.
        x = np.ones(2)
        assert np.allclose(agent.q_values(x), agent.q_values(x, target=True))


class TestDQNLearning:
    def test_learns_two_armed_bandit(self):
        agent = DQNAgent(2, 2, config=fast_dqn_config(), seed=1)
        run_episodes(agent, TwoArmedBandit(), episodes=150)
        greedy_action = agent.select_action(np.array([0.5, 0.5]), greedy=True)
        assert greedy_action == 1
        q = agent.q_values(np.array([0.5, 0.5]))
        assert q[1] > q[0]

    def test_learns_corridor(self):
        agent = DQNAgent(4, 2, config=fast_dqn_config(discount=0.9), seed=2)
        run_episodes(agent, CorridorMDP(), episodes=120)
        greedy_returns = run_episodes(agent, CorridorMDP(), episodes=5, learn=False, greedy=True)
        # Optimal return is 1 - 2 * 0.05 = 0.9 (three moves right).
        assert np.mean(greedy_returns) > 0.7

    def test_double_dqn_learns_bandit(self):
        agent = DQNAgent(2, 2, config=fast_dqn_config(double_q=True), seed=3)
        run_episodes(agent, TwoArmedBandit(), episodes=150)
        assert agent.select_action(np.array([0.5, 0.5]), greedy=True) == 1

    def test_dueling_dqn_learns_bandit(self):
        agent = DQNAgent(2, 2, config=fast_dqn_config(dueling=True), seed=4)
        run_episodes(agent, TwoArmedBandit(), episodes=150)
        assert agent.select_action(np.array([0.5, 0.5]), greedy=True) == 1

    def test_prioritized_replay_learns_bandit(self):
        agent = DQNAgent(2, 2, config=fast_dqn_config(prioritized_replay=True), seed=5)
        run_episodes(agent, TwoArmedBandit(), episodes=150)
        assert agent.select_action(np.array([0.5, 0.5]), greedy=True) == 1


class TestTabularQ:
    def test_discretization_buckets(self):
        agent = TabularQLearningAgent(3, 2, bins_per_feature=4, seed=0)
        key = agent.discretize(np.array([0.0, 0.49, 0.99]))
        assert key == (0, 1, 3)

    def test_out_of_range_values_clipped(self):
        agent = TabularQLearningAgent(2, 2, bins_per_feature=4, seed=0)
        assert agent.discretize(np.array([-1.0, 2.0])) == (0, 3)

    def test_learns_bandit(self):
        agent = TabularQLearningAgent(2, 2, learning_rate=0.5, seed=0)
        run_episodes(agent, TwoArmedBandit(), episodes=200)
        assert agent.select_action(np.array([0.5, 0.5]), greedy=True) == 1

    def test_learns_corridor(self):
        agent = TabularQLearningAgent(4, 2, learning_rate=0.3, discount=0.9, seed=1)
        run_episodes(agent, CorridorMDP(), episodes=300)
        greedy_returns = run_episodes(agent, CorridorMDP(), episodes=5, learn=False, greedy=True)
        assert np.mean(greedy_returns) > 0.7

    def test_update_without_observe_is_noop(self):
        agent = TabularQLearningAgent(2, 2, seed=0)
        assert agent.update() == {}

    def test_table_grows_with_distinct_states(self):
        agent = TabularQLearningAgent(1, 2, bins_per_feature=10, seed=0)
        for value in np.linspace(0, 0.99, 10):
            agent.observe(np.array([value]), 0, 0.0, np.array([value]), True)
            agent.update()
        assert agent.table_size == 10


class TestReinforce:
    def test_learns_bandit(self):
        # A modest learning rate plus a non-trivial entropy bonus keeps the
        # Monte Carlo policy gradient from collapsing onto the wrong arm
        # before it has sampled the good one.
        agent = ReinforceAgent(
            2,
            2,
            config=ReinforceConfig(
                hidden_layers=(16,), learning_rate=0.02, entropy_coefficient=0.05
            ),
            seed=0,
        )
        run_episodes(agent, TwoArmedBandit(), episodes=400)
        probabilities = agent.action_probabilities(np.array([0.5, 0.5]))
        assert probabilities[1] > 0.8

    def test_action_probabilities_masked(self):
        agent = ReinforceAgent(2, 3, seed=0)
        probabilities = agent.action_probabilities(
            np.zeros(2), mask=np.array([True, False, True])
        )
        assert probabilities[1] == pytest.approx(0.0, abs=1e-6)
        assert probabilities.sum() == pytest.approx(1.0)

    def test_end_episode_clears_buffer(self):
        agent = ReinforceAgent(2, 2, seed=0)
        agent.observe(np.zeros(2), 0, 1.0, np.zeros(2), True)
        diagnostics = agent.end_episode()
        assert "policy_loss" in diagnostics
        assert agent.end_episode() == {}

    def test_update_is_noop(self):
        agent = ReinforceAgent(2, 2, seed=0)
        assert agent.update() == {}

    def test_discounted_returns(self):
        agent = ReinforceAgent(2, 2, config=ReinforceConfig(discount=0.5), seed=0)
        returns = agent._discounted_returns(np.array([1.0, 1.0, 1.0]))
        assert np.allclose(returns, [1.75, 1.5, 1.0])


class TestActorCritic:
    def test_learns_bandit(self):
        agent = ActorCriticAgent(
            2,
            2,
            config=A2CConfig(hidden_layers=(16,), actor_learning_rate=0.05, n_steps=4),
            seed=0,
        )
        run_episodes(agent, TwoArmedBandit(), episodes=300)
        probabilities = agent.action_probabilities(np.array([0.5, 0.5]))
        assert probabilities[1] > 0.8

    def test_learns_corridor(self):
        agent = ActorCriticAgent(
            4,
            2,
            config=A2CConfig(hidden_layers=(32,), actor_learning_rate=0.02, n_steps=8, discount=0.9),
            seed=1,
        )
        run_episodes(agent, CorridorMDP(), episodes=400)
        greedy_returns = run_episodes(agent, CorridorMDP(), episodes=5, learn=False, greedy=True)
        assert np.mean(greedy_returns) > 0.5

    def test_update_waits_for_n_steps(self):
        agent = ActorCriticAgent(2, 2, config=A2CConfig(n_steps=5), seed=0)
        for _ in range(4):
            agent.observe(np.zeros(2), 0, 0.0, np.zeros(2), False)
            assert agent.update() == {}
        agent.observe(np.zeros(2), 0, 0.0, np.zeros(2), False)
        assert "actor_loss" in agent.update()

    def test_state_value_scalar(self):
        agent = ActorCriticAgent(3, 2, seed=0)
        assert isinstance(agent.state_value(np.zeros(3)), float)

    def test_save_load(self, tmp_path):
        agent = ActorCriticAgent(3, 2, seed=0)
        path = agent.save(tmp_path / "a2c.npz")
        probabilities = agent.action_probabilities(np.ones(3))
        fresh = ActorCriticAgent(3, 2, seed=9)
        fresh.load(path)
        assert np.allclose(fresh.action_probabilities(np.ones(3)), probabilities)
