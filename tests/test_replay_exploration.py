"""Unit tests for replay buffers and exploration strategies."""

import numpy as np
import pytest

from repro.agents.exploration import (
    BoltzmannExploration,
    ConstantSchedule,
    EpsilonGreedy,
    ExponentialDecaySchedule,
    LinearDecaySchedule,
)
from repro.agents.replay import PrioritizedReplayBuffer, ReplayBuffer, Transition


def make_transition(value: float = 0.0, action: int = 0, with_mask: bool = True):
    return Transition(
        state=np.array([value, value]),
        action=action,
        reward=value,
        next_state=np.array([value + 1, value + 1]),
        done=False,
        next_mask=np.array([True, False, True]) if with_mask else None,
    )


class TestSchedules:
    def test_constant(self):
        schedule = ConstantSchedule(0.3)
        assert schedule(0) == schedule(1_000_000) == 0.3

    def test_linear_decay_endpoints(self):
        schedule = LinearDecaySchedule(1.0, 0.1, 100)
        assert schedule(0) == 1.0
        assert schedule(50) == pytest.approx(0.55)
        assert schedule(100) == 0.1
        assert schedule(10_000) == 0.1

    def test_linear_decay_monotone(self):
        schedule = LinearDecaySchedule(1.0, 0.0, 10)
        values = [schedule(i) for i in range(12)]
        assert all(a >= b for a, b in zip(values, values[1:]))

    def test_exponential_decay_floor(self):
        schedule = ExponentialDecaySchedule(1.0, 0.05, 0.9)
        assert schedule(0) == 1.0
        assert schedule(1000) == 0.05

    def test_invalid_schedules_rejected(self):
        with pytest.raises(ValueError):
            LinearDecaySchedule(0.1, 0.5, 10)
        with pytest.raises(ValueError):
            ExponentialDecaySchedule(1.0, 0.1, 1.5)


class TestEpsilonGreedy:
    def test_greedy_picks_argmax(self):
        policy = EpsilonGreedy(ConstantSchedule(0.0), seed=0)
        action = policy.select(np.array([1.0, 5.0, 3.0]), step=0)
        assert action == 1

    def test_mask_excludes_invalid_actions(self):
        policy = EpsilonGreedy(ConstantSchedule(1.0), seed=0)
        mask = np.array([False, True, False])
        actions = {policy.select(np.array([9.0, 1.0, 8.0]), 0, mask=mask) for _ in range(50)}
        assert actions == {1}

    def test_greedy_flag_overrides_epsilon(self):
        policy = EpsilonGreedy(ConstantSchedule(1.0), seed=0)
        actions = {
            policy.select(np.array([0.0, 10.0, 0.0]), 0, greedy=True) for _ in range(20)
        }
        assert actions == {1}

    def test_full_exploration_visits_all_actions(self):
        policy = EpsilonGreedy(ConstantSchedule(1.0), seed=1)
        actions = {policy.select(np.zeros(4), 0) for _ in range(200)}
        assert actions == {0, 1, 2, 3}

    def test_all_invalid_mask_rejected(self):
        policy = EpsilonGreedy(ConstantSchedule(0.5), seed=0)
        with pytest.raises(ValueError):
            policy.select(np.zeros(3), 0, mask=np.zeros(3, dtype=bool))

    def test_mask_length_mismatch_rejected(self):
        policy = EpsilonGreedy(seed=0)
        with pytest.raises(ValueError):
            policy.select(np.zeros(3), 0, mask=np.array([True, False]))


class TestBoltzmann:
    def test_prefers_higher_values(self):
        policy = BoltzmannExploration(ConstantSchedule(0.5), seed=0)
        q = np.array([0.0, 3.0, 0.0])
        counts = np.zeros(3)
        for _ in range(300):
            counts[policy.select(q, 0)] += 1
        assert counts[1] > counts[0]
        assert counts[1] > counts[2]

    def test_respects_mask(self):
        policy = BoltzmannExploration(seed=0)
        mask = np.array([True, False, True])
        actions = {policy.select(np.array([1.0, 100.0, 1.0]), 0, mask=mask) for _ in range(100)}
        assert 1 not in actions

    def test_greedy_mode(self):
        policy = BoltzmannExploration(seed=0)
        assert policy.select(np.array([0.0, 2.0, 1.0]), 0, greedy=True) == 1


class TestReplayBuffer:
    def test_add_and_len(self):
        buffer = ReplayBuffer(capacity=10, seed=0)
        for i in range(5):
            buffer.add(make_transition(float(i)))
        assert len(buffer) == 5
        assert not buffer.is_full

    def test_capacity_eviction(self):
        buffer = ReplayBuffer(capacity=3, seed=0)
        for i in range(10):
            buffer.add(make_transition(float(i)))
        assert len(buffer) == 3
        assert buffer.is_full

    def test_sample_batch_shapes(self):
        buffer = ReplayBuffer(capacity=100, seed=0)
        for i in range(20):
            buffer.add(make_transition(float(i), action=i % 3))
        batch = buffer.sample(8)
        assert len(batch) == 8
        assert batch.states.shape == (8, 2)
        assert batch.next_states.shape == (8, 2)
        assert batch.actions.shape == (8,)
        assert batch.next_masks.shape == (8, 3)
        assert np.all(batch.weights == 1.0)

    def test_sample_empty_rejected(self):
        with pytest.raises(ValueError):
            ReplayBuffer(seed=0).sample(4)

    def test_missing_masks_produce_none(self):
        buffer = ReplayBuffer(capacity=10, seed=0)
        buffer.add(make_transition(1.0, with_mask=False))
        buffer.add(make_transition(2.0, with_mask=True))
        batch = buffer.sample(4)
        assert batch.next_masks is None

    def test_clear(self):
        buffer = ReplayBuffer(capacity=10, seed=0)
        buffer.add(make_transition())
        buffer.clear()
        assert len(buffer) == 0


class TestPrioritizedReplay:
    def test_priorities_bias_sampling(self):
        buffer = PrioritizedReplayBuffer(capacity=50, alpha=1.0, beta=0.0, seed=0)
        for i in range(10):
            buffer.add(make_transition(float(i), action=i % 2))
        # Give transition 0 overwhelming priority.
        buffer.update_priorities(np.array([0]), np.array([1000.0]))
        batch = buffer.sample(200)
        fraction_zero = np.mean(batch.states[:, 0] == 0.0)
        assert fraction_zero > 0.5

    def test_importance_weights_normalized(self):
        buffer = PrioritizedReplayBuffer(capacity=20, seed=0)
        for i in range(10):
            buffer.add(make_transition(float(i)))
        batch = buffer.sample(10)
        assert np.max(batch.weights) == pytest.approx(1.0)
        assert np.all(batch.weights > 0)

    def test_update_priorities_out_of_range_rejected(self):
        buffer = PrioritizedReplayBuffer(capacity=5, seed=0)
        buffer.add(make_transition())
        with pytest.raises(IndexError):
            buffer.update_priorities(np.array([7]), np.array([1.0]))

    def test_eviction_keeps_priority_list_aligned(self):
        buffer = PrioritizedReplayBuffer(capacity=4, seed=0)
        for i in range(12):
            buffer.add(make_transition(float(i)))
        assert len(buffer) == 4
        batch = buffer.sample(4)
        assert batch.states.shape == (4, 2)

    def test_clear_resets_priorities(self):
        buffer = PrioritizedReplayBuffer(capacity=5, seed=0)
        buffer.add(make_transition())
        buffer.update_priorities(np.array([0]), np.array([9.0]))
        buffer.clear()
        assert len(buffer) == 0
        buffer.add(make_transition())
        assert buffer.sample(1).weights[0] == pytest.approx(1.0)
