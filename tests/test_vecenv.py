"""Tests for the vectorized environment layer and the batched agent API."""

import numpy as np
import pytest

from repro.agents.actor_critic import A2CConfig, ActorCriticAgent
from repro.agents.base import Agent
from repro.agents.dqn import DQNAgent, DQNConfig
from repro.agents.exploration import ConstantSchedule, EpsilonGreedy
from repro.agents.policy_gradient import ReinforceAgent, ReinforceConfig
from repro.agents.qlearning import TabularQLearningAgent
from repro.core.env import EnvConfig
from repro.core.training import Trainer, TrainingConfig, VecTrainer
from repro.core.vecenv import (
    VecPlacementEnv,
    lane_failure_seed,
    lane_workload_seed,
    make_lane_env,
)
from repro.experiments.runner import evaluate_agent_across_scenarios
from repro.sim.failures import FailureConfig
from repro.workloads.scenarios import (
    reference_scenario,
    sample_scenarios,
    scenario_grid,
)

SEED = 7
ENV_CONFIG = EnvConfig(requests_per_episode=6)


def small_scenario(seed=2):
    return reference_scenario(
        arrival_rate=0.6, num_edge_nodes=6, horizon=80.0, seed=seed
    )


def make_venv(num_lanes=3, auto_reset=True, scenario=None):
    return VecPlacementEnv.from_scenario(
        scenario or small_scenario(),
        num_lanes,
        seed=SEED,
        env_config=ENV_CONFIG,
        auto_reset=auto_reset,
    )


def masked_random_action(mask, rng):
    choices = np.flatnonzero(mask)
    return int(choices[int(rng.random() * len(choices))])


class TestVecPlacementEnvShapes:
    def test_reset_and_mask_shapes(self):
        venv = make_venv(num_lanes=4)
        states = venv.reset()
        masks = venv.valid_action_masks()
        assert states.shape == (4, venv.state_dim)
        assert masks.shape == (4, venv.num_actions)
        assert masks.dtype == bool
        assert masks.any(axis=1).all()

    def test_step_shapes_and_infos(self):
        venv = make_venv(num_lanes=3)
        venv.reset()
        masks = venv.valid_action_masks()
        rng = np.random.default_rng(0)
        actions = [masked_random_action(masks[i], rng) for i in range(3)]
        states, rewards, dones, infos = venv.step(actions)
        assert states.shape == (3, venv.state_dim)
        assert rewards.shape == (3,)
        assert dones.shape == (3,)
        assert len(infos) == 3
        for lane, info in enumerate(infos):
            assert info["lane"] == lane
            assert info["lane_name"] == venv.lane_names[lane]

    def test_wrong_action_count_rejected(self):
        venv = make_venv(num_lanes=3)
        venv.reset()
        with pytest.raises(ValueError):
            venv.step([0, 0])

    def test_empty_lane_list_rejected(self):
        with pytest.raises(ValueError):
            VecPlacementEnv([])

    def test_mismatched_lane_spaces_rejected(self):
        small = make_lane_env(small_scenario(), workload_seed=0, env_config=ENV_CONFIG)
        big = make_lane_env(
            reference_scenario(num_edge_nodes=8, seed=2),
            workload_seed=0,
            env_config=ENV_CONFIG,
        )
        with pytest.raises(ValueError, match="lane 1"):
            VecPlacementEnv([small, big])


class TestLaneSeedDeterminism:
    """A K-lane vec env must be bitwise identical to K serial envs."""

    def drive_vec(self, num_lanes, steps):
        venv = make_venv(num_lanes=num_lanes, auto_reset=True)
        rngs = [np.random.default_rng(1000 + lane) for lane in range(num_lanes)]
        trajectories = [[] for _ in range(num_lanes)]
        episode_stats = [[] for _ in range(num_lanes)]
        states = venv.reset()
        for lane in range(num_lanes):
            trajectories[lane].append(("reset", states[lane].copy()))
        for _ in range(steps):
            masks = venv.valid_action_masks()
            actions = [
                masked_random_action(masks[lane], rngs[lane])
                for lane in range(num_lanes)
            ]
            states, rewards, dones, infos = venv.step(actions)
            for lane in range(num_lanes):
                observed = (
                    infos[lane]["terminal_state"] if dones[lane] else states[lane]
                )
                trajectories[lane].append(
                    (actions[lane], observed.copy(), rewards[lane], bool(dones[lane]))
                )
                if dones[lane]:
                    episode_stats[lane].append(infos[lane]["episode_stats"])
                    trajectories[lane].append(("reset", states[lane].copy()))
        return trajectories, episode_stats

    def drive_serial(self, num_lanes, steps):
        scenario = small_scenario()
        trajectories = [[] for _ in range(num_lanes)]
        episode_stats = [[] for _ in range(num_lanes)]
        for lane in range(num_lanes):
            env = make_lane_env(
                scenario,
                lane_workload_seed(SEED, lane, scenario.name),
                env_config=ENV_CONFIG,
            )
            rng = np.random.default_rng(1000 + lane)
            state = env.reset()
            trajectories[lane].append(("reset", state.copy()))
            for _ in range(steps):
                mask = env.valid_action_mask()
                action = masked_random_action(mask, rng)
                state, reward, done, info = env.step(action)
                trajectories[lane].append(
                    (action, state.copy(), reward, bool(done))
                )
                if done:
                    episode_stats[lane].append(info["episode_stats"])
                    state = env.reset()
                    trajectories[lane].append(("reset", state.copy()))
        return trajectories, episode_stats

    def test_vec_equals_serial_bitwise(self):
        num_lanes, steps = 3, 160  # long enough to cross several episodes
        vec_traj, vec_stats = self.drive_vec(num_lanes, steps)
        ser_traj, ser_stats = self.drive_serial(num_lanes, steps)
        assert vec_stats == ser_stats
        for lane in range(num_lanes):
            assert sum(1 for _ in vec_stats[lane]) >= 1  # episodes did complete
            assert len(vec_traj[lane]) == len(ser_traj[lane])
            for vec_entry, ser_entry in zip(vec_traj[lane], ser_traj[lane]):
                assert vec_entry[0] == ser_entry[0]
                np.testing.assert_array_equal(vec_entry[1], ser_entry[1])
                if len(vec_entry) > 2:
                    assert vec_entry[2] == ser_entry[2]  # bitwise reward
                    assert vec_entry[3] == ser_entry[3]

    def test_lanes_are_diverse(self):
        venv = make_venv(num_lanes=2)
        states = venv.reset()
        # Different derived workload seeds produce different request streams.
        assert not np.array_equal(states[0], states[1])


class TestScenarioGridAndSampler:
    def test_scenario_grid_names_and_seeds(self):
        base = small_scenario()
        grid = scenario_grid(base, arrival_rates=(0.4, 0.8), sla_scales=(1.0, 1.5))
        assert len(grid) == 4
        assert len({cell.name for cell in grid}) == 4
        assert len({cell.workload_config.seed for cell in grid}) == 4
        rates = {cell.workload_config.arrival_rate for cell in grid}
        assert rates == {0.4, 0.8}

    def test_sample_scenarios_reproducible(self):
        base = small_scenario()
        first = sample_scenarios(3, base=base, seed=5)
        second = sample_scenarios(3, base=base, seed=5)
        assert [s.name for s in first] == [s.name for s in second]
        assert [s.workload_config.arrival_rate for s in first] == [
            s.workload_config.arrival_rate for s in second
        ]
        for sample in first:
            assert 0.3 <= sample.workload_config.arrival_rate <= 1.2

    def test_sample_scenarios_rejects_bad_count(self):
        with pytest.raises(ValueError):
            sample_scenarios(0)

    def test_grid_builds_scenario_diverse_venv(self):
        grid = scenario_grid(small_scenario(), arrival_rates=(0.4, 1.0))
        venv = VecPlacementEnv.from_scenarios(grid, env_config=ENV_CONFIG)
        assert venv.num_lanes == 2
        assert venv.lane_names == [cell.name for cell in grid]


class TestBatchedMaskKernel:
    """The (K, A) mask kernel must equal the stacked per-lane reference."""

    @pytest.mark.parametrize("latency_check", [True, False])
    def test_kernel_bitwise_equals_per_lane(self, latency_check):
        config = EnvConfig(requests_per_episode=6, latency_mask_check=latency_check)
        venv = VecPlacementEnv.from_scenario(
            small_scenario(), 4, seed=SEED, env_config=config
        )
        assert venv._mask_kernel
        rng = np.random.default_rng(0)
        venv.reset()
        for _ in range(80):
            kernel = venv.valid_action_masks()
            reference = np.stack([env.valid_action_mask() for env in venv.envs])
            np.testing.assert_array_equal(kernel, reference)
            actions = [masked_random_action(kernel[i], rng) for i in range(4)]
            venv.step(actions)

    def test_kernel_disabled_for_mixed_topologies(self):
        lanes = [
            make_lane_env(small_scenario(), 0, env_config=ENV_CONFIG),
            make_lane_env(small_scenario(seed=9), 1, env_config=ENV_CONFIG),
        ]
        if lanes[0].state_dim == lanes[1].state_dim:
            venv = VecPlacementEnv(lanes)
            # Different topology seeds -> different latency matrices -> the
            # kernel must fall back to the per-lane reference path.
            assert not venv._mask_kernel
            venv.reset()
            reference = np.stack([env.valid_action_mask() for env in venv.envs])
            np.testing.assert_array_equal(venv.valid_action_masks(), reference)
            assert venv.lane_decision_context() is None

    def test_context_memoized_within_step(self):
        venv = make_venv(num_lanes=3)
        venv.reset()
        first = venv.lane_decision_context()
        assert venv.lane_decision_context() is first
        masks = venv.valid_action_masks()
        rng = np.random.default_rng(1)
        venv.step([masked_random_action(masks[i], rng) for i in range(3)])
        assert venv.lane_decision_context() is not first


class TestFaultInjectedLanes:
    FAILURES = FailureConfig(mean_time_to_failure=6.0, mean_time_to_repair=3.0, seed=4)

    def make_faulty_venv(self, num_lanes=3):
        return VecPlacementEnv.from_scenario(
            small_scenario(),
            num_lanes,
            seed=SEED,
            env_config=ENV_CONFIG,
            failure_config=self.FAILURES,
        )

    def drive(self, venv, steps=200):
        rng = np.random.default_rng(0)
        venv.reset()
        disrupted = 0
        saw_failure = False
        for _ in range(steps):
            masks = venv.valid_action_masks()
            for env in venv.envs:
                for node_id in env.failed_nodes:
                    saw_failure = True
                    assert not masks[
                        venv.envs.index(env), env._node_action[node_id]
                    ], "failed node not masked out"
            actions = [
                masked_random_action(masks[i], rng) for i in range(venv.num_lanes)
            ]
            _, _, dones, infos = venv.step(actions)
            for lane, done in enumerate(dones):
                if done:
                    disrupted += infos[lane]["episode_stats"]["disrupted"]
        return disrupted, saw_failure

    def test_failures_fence_and_disrupt(self):
        venv = self.make_faulty_venv()
        disrupted, saw_failure = self.drive(venv)
        assert saw_failure, "aggressive failure config should fail some node"
        assert disrupted >= 0

    def test_fault_injected_lane_equals_serial_env(self):
        """A fault-injected vec lane is bitwise identical to the serial env
        rebuilt from the same derived workload + failure seeds."""
        num_lanes, steps = 2, 120
        venv = self.make_faulty_venv(num_lanes)
        rngs = [np.random.default_rng(50 + lane) for lane in range(num_lanes)]
        venv.reset()
        trajectories = [[] for _ in range(num_lanes)]
        for _ in range(steps):
            masks = venv.valid_action_masks()
            actions = [
                masked_random_action(masks[lane], rngs[lane])
                for lane in range(num_lanes)
            ]
            states, rewards, dones, _ = venv.step(actions)
            for lane in range(num_lanes):
                trajectories[lane].append(
                    (actions[lane], rewards[lane], bool(dones[lane]),
                     states[lane].copy())
                )
        scenario = small_scenario()
        from dataclasses import replace

        for lane in range(num_lanes):
            env = make_lane_env(
                scenario,
                lane_workload_seed(SEED, lane, scenario.name),
                env_config=ENV_CONFIG,
                failure_config=replace(
                    self.FAILURES,
                    seed=lane_failure_seed(SEED, lane, scenario.name),
                ),
            )
            rng = np.random.default_rng(50 + lane)
            state = env.reset()
            for step in range(steps):
                mask = env.valid_action_mask()
                action = masked_random_action(mask, rng)
                state, reward, done, _ = env.step(action)
                recorded = trajectories[lane][step]
                assert action == recorded[0]
                assert reward == recorded[1]
                assert done == recorded[2]
                if done:
                    state = env.reset()
                np.testing.assert_array_equal(state, recorded[3])

    def test_env_capacity_conserved_across_failures(self):
        """Allocation bookkeeping stays exact through fail/recover cycles."""
        venv = self.make_faulty_venv(num_lanes=2)
        rng = np.random.default_rng(3)
        venv.reset()
        for _ in range(150):
            masks = venv.valid_action_masks()
            actions = [masked_random_action(masks[i], rng) for i in range(2)]
            venv.step(actions)
            for env in venv.envs:
                for node in env.network.nodes():
                    total = sum(
                        (d.as_array() for d in node._allocations.values()),
                        np.zeros(3),
                    )
                    np.testing.assert_allclose(total, node._used_arr, atol=1e-6)
                for node_id in env.failed_nodes:
                    assert env.network.node(node_id).available.is_zero(tol=1e-9)

    def test_recovery_releases_fence(self):
        scenario = small_scenario()
        # A practically failure-free schedule: this test drives the fail /
        # recover handlers manually.
        reliable = FailureConfig(mean_time_to_failure=1e9, seed=0)
        env = make_lane_env(
            scenario, 0, env_config=ENV_CONFIG, failure_config=reliable
        )
        env.reset()
        node_id = env.network.edge_node_ids[0]
        env._fail_node(node_id)
        assert env.failed_nodes == [node_id]
        assert env.network.node(node_id).available.is_zero()
        env._recover_node(node_id)
        assert env.failed_nodes == []
        assert not env.network.node(node_id).holds(env._fence_handle(node_id))


class TestExplorationDecayEquivalence:
    """The epsilon schedule must advance once per *transition*: K lanes
    decay exactly as fast per environment step as the serial trainer."""

    @staticmethod
    def drive_transitions(num_lanes, total_transitions):
        agent = DQNAgent(
            4,
            3,
            DQNConfig(
                hidden_layers=(8,),
                min_replay_size=4,
                batch_size=4,
                epsilon_decay_steps=128,
            ),
            seed=0,
        )
        rng = np.random.default_rng(0)
        for _ in range(total_transitions // num_lanes):
            agent.observe_batch(
                rng.random((num_lanes, 4)),
                np.zeros(num_lanes, dtype=int),
                np.ones(num_lanes),
                rng.random((num_lanes, 4)),
                np.zeros(num_lanes, dtype=bool),
            )
            agent.update()
        return agent

    def test_dqn_epsilon_decays_per_transition(self):
        serial = self.drive_transitions(1, 64)
        vectorized = self.drive_transitions(16, 64)
        assert serial._environment_steps == vectorized._environment_steps == 64
        epsilon_serial = serial.exploration.schedule.value(serial._environment_steps)
        epsilon_vec = vectorized.exploration.schedule.value(
            vectorized._environment_steps
        )
        assert epsilon_serial == pytest.approx(epsilon_vec)
        # Not decayed once per batched step: that would leave epsilon 16x
        # closer to its start value.
        undecayed = serial.exploration.schedule.value(64 // 16)
        assert epsilon_vec < undecayed

    def test_tabular_schedule_steps_count_transitions(self):
        agent = TabularQLearningAgent(4, 3, seed=0)
        rng = np.random.default_rng(0)
        for _ in range(4):
            agent.observe_batch(
                rng.random((16, 4)),
                np.zeros(16, dtype=int),
                np.ones(16),
                rng.random((16, 4)),
                np.zeros(16, dtype=bool),
            )
            agent.update()
        assert agent.training_steps == 64


class TestBatchedExploration:
    def test_select_batch_greedy_is_masked_argmax(self):
        policy = EpsilonGreedy(ConstantSchedule(0.0), seed=0)
        q = np.array([[0.1, 0.9, 0.5], [0.8, 0.2, 0.3]])
        masks = np.array([[True, False, True], [True, True, True]])
        actions = policy.select_batch(q, step=0, masks=masks, greedy=True)
        np.testing.assert_array_equal(actions, [2, 0])

    def test_select_batch_respects_masks_when_exploring(self):
        policy = EpsilonGreedy(ConstantSchedule(1.0), seed=0)
        masks = np.zeros((8, 5), dtype=bool)
        masks[:, 2] = True
        masks[:, 4] = True
        q = np.zeros((8, 5))
        for _ in range(10):
            actions = policy.select_batch(q, step=0, masks=masks)
            assert set(actions.tolist()) <= {2, 4}

    def test_select_batch_rejects_empty_mask_rows(self):
        policy = EpsilonGreedy(ConstantSchedule(0.5), seed=0)
        masks = np.array([[True, True], [False, False]])
        with pytest.raises(ValueError, match="lanes \\[1\\]"):
            policy.select_batch(np.zeros((2, 2)), step=0, masks=masks)


class FallbackAgent(Agent):
    """Minimal custom agent exercising the generic per-row fallbacks."""

    name = "fallback"

    def __init__(self, state_dim, num_actions):
        super().__init__(state_dim, num_actions)
        self.observed = []

    def select_action(self, state, mask=None, greedy=False):
        return int(np.flatnonzero(mask)[0]) if mask is not None else 0

    def observe(self, state, action, reward, next_state, done, next_mask=None):
        self.observed.append((action, float(reward), bool(done)))

    def update(self):
        return {}


class TestBatchedAgentAPI:
    def make_states_masks(self, venv):
        states = venv.reset()
        masks = venv.valid_action_masks()
        return states, masks

    def test_generic_fallback_agent_works(self):
        venv = make_venv(num_lanes=3)
        agent = FallbackAgent(venv.state_dim, venv.num_actions)
        states, masks = self.make_states_masks(venv)
        actions = agent.select_actions(states, masks)
        assert actions.shape == (3,)
        next_states, rewards, dones, _ = venv.step(actions)
        agent.observe_batch(states, actions, rewards, next_states, dones, masks)
        assert len(agent.observed) == 3

    def test_dqn_batch_matches_per_row_q_values(self):
        venv = make_venv(num_lanes=4)
        agent = DQNAgent(
            venv.state_dim,
            venv.num_actions,
            DQNConfig(hidden_layers=(16, 16), min_replay_size=16, batch_size=16),
            seed=0,
        )
        states, masks = self.make_states_masks(venv)
        batch_q = agent.batch_q_values(states)
        for row in range(4):
            np.testing.assert_allclose(batch_q[row], agent.q_values(states[row]))
        actions = agent.select_actions(states, masks, greedy=True)
        for row in range(4):
            assert masks[row, actions[row]]

    def test_dueling_dqn_batched_selection(self):
        venv = make_venv(num_lanes=4)
        agent = DQNAgent(
            venv.state_dim,
            venv.num_actions,
            DQNConfig(
                hidden_layers=(16, 16),
                min_replay_size=16,
                batch_size=16,
                dueling=True,
            ),
            seed=0,
        )
        states, masks = self.make_states_masks(venv)
        actions = agent.select_actions(states, masks, greedy=True)
        assert all(masks[row, actions[row]] for row in range(4))

    def test_policy_agents_batched_selection_respects_masks(self):
        venv = make_venv(num_lanes=4)
        for agent in (
            ActorCriticAgent(
                venv.state_dim, venv.num_actions, A2CConfig(hidden_layers=(16, 16)), seed=0
            ),
            ReinforceAgent(
                venv.state_dim,
                venv.num_actions,
                ReinforceConfig(hidden_layers=(16, 16)),
                seed=0,
            ),
        ):
            states, masks = self.make_states_masks(venv)
            greedy = agent.select_actions(states, masks, greedy=True)
            sampled = agent.select_actions(states, masks, greedy=False)
            for row in range(4):
                assert masks[row, greedy[row]]
                assert masks[row, sampled[row]]

    def test_tabular_batched_selection_and_learning(self):
        venv = make_venv(num_lanes=3)
        agent = TabularQLearningAgent(venv.state_dim, venv.num_actions, seed=0)
        states, masks = self.make_states_masks(venv)
        keys = agent.discretize_batch(states)
        assert keys == [agent.discretize(states[row]) for row in range(3)]
        actions = agent.select_actions(states, masks)
        next_states, rewards, dones, _ = venv.step(actions)
        next_masks = venv.valid_action_masks()
        agent.observe_batch(states, actions, rewards, next_states, dones, next_masks)
        diagnostics = agent.update()
        assert "td_error" in diagnostics
        assert agent.training_steps == 3


class TestVecTrainer:
    def make_trainer(self, agent_factory, num_lanes=3, num_episodes=6):
        venv = make_venv(num_lanes=num_lanes)
        agent = agent_factory(venv)
        config = TrainingConfig(
            num_episodes=num_episodes, evaluation_interval=3, evaluation_episodes=2
        )
        return VecTrainer(venv, agent, config)

    @staticmethod
    def dqn_factory(venv):
        return DQNAgent(
            venv.state_dim,
            venv.num_actions,
            DQNConfig(
                hidden_layers=(16, 16),
                min_replay_size=16,
                batch_size=16,
                epsilon_decay_steps=300,
            ),
            seed=0,
        )

    def test_history_shapes(self):
        trainer = self.make_trainer(self.dqn_factory)
        history = trainer.train()
        assert len(history.episode_rewards) == 6
        assert len(history.episode_acceptance) == 6
        assert len(history.episode_losses) == 6
        assert history.evaluation_episodes_at == [3, 6]
        assert len(history.evaluation_rewards) == 2

    def test_rollout_agents_train(self):
        for factory in (
            lambda venv: ActorCriticAgent(
                venv.state_dim,
                venv.num_actions,
                A2CConfig(hidden_layers=(16, 16), n_steps=4),
                seed=0,
            ),
            lambda venv: ReinforceAgent(
                venv.state_dim,
                venv.num_actions,
                ReinforceConfig(hidden_layers=(16, 16)),
                seed=0,
            ),
        ):
            trainer = self.make_trainer(factory, num_episodes=4)
            history = trainer.train()
            assert len(history.episode_rewards) == 4
            assert trainer.agent.training_steps > 0

    def test_evaluate_aggregates(self):
        trainer = self.make_trainer(self.dqn_factory)
        result = trainer.evaluate(episodes=3)
        assert result.episodes == 3
        assert 0.0 <= result.mean_acceptance <= 1.0
        assert np.isfinite(result.mean_reward)

    def test_dimension_mismatch_rejected(self):
        venv = make_venv(num_lanes=2)
        wrong = DQNAgent(
            venv.state_dim + 1,
            venv.num_actions,
            DQNConfig(hidden_layers=(8,), min_replay_size=16, batch_size=16),
        )
        with pytest.raises(ValueError):
            VecTrainer(venv, wrong)

    def test_trainer_is_the_single_lane_case(self):
        env = make_lane_env(small_scenario(), workload_seed=0, env_config=ENV_CONFIG)
        agent = DQNAgent(
            env.state_dim,
            env.num_actions,
            DQNConfig(hidden_layers=(16, 16), min_replay_size=16, batch_size=16),
            seed=0,
        )
        trainer = Trainer(env, agent, TrainingConfig(num_episodes=2))
        assert isinstance(trainer, VecTrainer)
        assert trainer.num_lanes == 1
        assert trainer.env is env
        summary = trainer.run_episode(learn=True)
        assert set(summary) == {"reward", "acceptance", "latency", "loss"}


class TestVecLearningCadence:
    def test_dqn_update_cadence_not_aliased_by_lane_count(self):
        # K=3 lanes with update_every=4: the old `_environment_steps % 4`
        # gate only fired at multiples of 12 (one update per 12 transitions);
        # the consumed-transitions counter must amortize to exactly one
        # update per 4 transitions: 3 updates over 4 vec steps.
        agent = DQNAgent(
            4,
            3,
            DQNConfig(
                hidden_layers=(8,),
                min_replay_size=4,
                batch_size=4,
                update_every=4,
            ),
            seed=0,
        )
        rng = np.random.default_rng(0)
        for _ in range(4):  # 4 vec steps x 3 lanes = 12 transitions
            states = rng.random((3, 4))
            agent.observe_batch(
                states,
                np.zeros(3, dtype=int),
                np.ones(3),
                rng.random((3, 4)),
                np.zeros(3, dtype=bool),
            )
            agent.update()
        assert agent.training_steps == 3  # 12 transitions / update_every=4

    def test_reinforce_end_episode_discards_partial_vec_lanes(self):
        agent = ReinforceAgent(
            4, 3, ReinforceConfig(hidden_layers=(8,)), seed=0
        )
        rng = np.random.default_rng(0)
        agent.observe_batch(
            rng.random((3, 4)),
            np.zeros(3, dtype=int),
            np.ones(3),
            rng.random((3, 4)),
            np.zeros(3, dtype=bool),  # no lane finished its episode
        )
        diagnostics = agent.end_episode()
        assert diagnostics == {}
        assert agent.training_steps == 0  # partial episodes were dropped
        assert all(not lane for lane in agent._lane_states)

    def test_truncation_flushes_rollout_agents(self):
        # A tiny step cap forces truncations; the trainer must hand them to
        # the learner as rollout boundaries so REINFORCE still learns and
        # no lane buffer spans the forced reset.
        venv = make_venv(num_lanes=2)
        agent = ReinforceAgent(
            venv.state_dim,
            venv.num_actions,
            ReinforceConfig(hidden_layers=(8,)),
            seed=0,
        )
        trainer = VecTrainer(
            venv,
            agent,
            TrainingConfig(
                num_episodes=2, max_steps_per_episode=5, evaluation_interval=50
            ),
        )
        history = trainer.train()
        assert len(history.episode_rewards) == 2
        assert agent.training_steps >= 2  # one flush per truncated episode


class TestVecSweepEvaluation:
    def test_evaluate_agent_across_scenarios(self):
        grid = scenario_grid(small_scenario(), arrival_rates=(0.4, 1.0))
        probe = VecPlacementEnv.from_scenarios(grid, env_config=ENV_CONFIG)
        agent = DQNAgent(
            probe.state_dim,
            probe.num_actions,
            DQNConfig(hidden_layers=(16, 16), min_replay_size=16, batch_size=16),
            seed=0,
        )
        results = evaluate_agent_across_scenarios(
            agent, grid, episodes_per_scenario=2, seed=1, env_config=ENV_CONFIG
        )
        assert len(results) == 2
        for result in results:
            assert result.episodes == 2
            assert 0.0 <= result.mean_acceptance <= 1.0

    def test_rejects_bad_episode_count(self):
        with pytest.raises(ValueError):
            evaluate_agent_across_scenarios(
                FallbackAgent(4, 3), [small_scenario()], episodes_per_scenario=0
            )
