"""Tests for node-failure injection and the faulty simulation."""

import numpy as np
import pytest

from repro.sim.events import Event, EventType
from repro.sim.failures import (
    DomainFailureConfig,
    DomainFailureInjector,
    FailureConfig,
    FailureInjector,
    FaultDomain,
    FaultyNFVSimulation,
    fault_domains_from_network,
)
from repro.sim.simulation import SimulationConfig
from repro.substrate.topology import TopologyConfig, linear_chain_topology, metro_edge_cloud_topology
from tests.conftest import build_request
from tests.test_simulation import AcceptFirstNodePolicy


def assert_capacity_conserved(network):
    """Per node: the sum of live allocations must equal the used vector, and
    used + available must equal capacity (the conservation invariant)."""
    for node in network.nodes():
        allocated = sum(
            (demand.as_array() for demand in node._allocations.values()),
            np.zeros(3),
        )
        np.testing.assert_allclose(allocated, node._used_arr, atol=1e-6)
        np.testing.assert_allclose(
            node._used_arr + node.available.as_array(),
            node._capacity_arr,
            atol=1e-6,
        )


class TestFailureConfig:
    def test_steady_state_availability(self):
        config = FailureConfig(mean_time_to_failure=900.0, mean_time_to_repair=100.0)
        assert config.steady_state_availability == pytest.approx(0.9)

    def test_invalid_parameters_rejected(self):
        with pytest.raises(ValueError):
            FailureConfig(mean_time_to_failure=0.0)
        with pytest.raises(ValueError):
            FailureConfig(mean_time_to_repair=-1.0)


class TestFailureInjector:
    def test_schedule_sorted_and_within_horizon(self):
        network = metro_edge_cloud_topology(TopologyConfig(num_edge_nodes=8, seed=1))
        injector = FailureInjector(FailureConfig(mean_time_to_failure=50.0, mean_time_to_repair=10.0, seed=3))
        events = injector.schedule(network, horizon=500.0)
        assert events, "expected at least one failure over 10x the MTTF"
        times = [e.time for e in events]
        assert times == sorted(times)
        assert all(0 < t <= 500.0 for t in times)

    def test_per_node_events_alternate(self):
        network = linear_chain_topology(num_edge_nodes=3, seed=0)
        injector = FailureInjector(FailureConfig(mean_time_to_failure=20.0, mean_time_to_repair=5.0, seed=1))
        events = injector.schedule(network, horizon=300.0)
        for node_id in network.node_ids:
            node_events = [e for e in events if e.node_id == node_id]
            for first, second in zip(node_events, node_events[1:]):
                assert first.is_failure != second.is_failure
            if node_events:
                assert node_events[0].is_failure

    def test_edge_only_scope(self):
        network = metro_edge_cloud_topology(TopologyConfig(num_edge_nodes=6, seed=2))
        cloud = set(network.cloud_node_ids)
        events = FailureInjector(
            FailureConfig(mean_time_to_failure=10.0, mean_time_to_repair=2.0, seed=2)
        ).schedule(network, horizon=200.0)
        assert all(e.node_id not in cloud for e in events)

    def test_deterministic_with_seed(self):
        network = linear_chain_topology(num_edge_nodes=4, seed=0)
        config = FailureConfig(mean_time_to_failure=30.0, mean_time_to_repair=5.0, seed=11)
        a = FailureInjector(config).schedule(network, 200.0)
        b = FailureInjector(config).schedule(network, 200.0)
        assert a == b

    def test_reliable_nodes_rarely_fail(self):
        network = linear_chain_topology(num_edge_nodes=4, seed=0)
        events = FailureInjector(
            FailureConfig(mean_time_to_failure=1e9, mean_time_to_repair=1.0, seed=0)
        ).schedule(network, horizon=100.0)
        assert events == []


class TestFaultySimulation:
    def _run(self, failure_config, catalog, horizon=100.0, holding=200.0):
        network = linear_chain_topology(num_edge_nodes=4, link_latency_ms=2.0, seed=7)
        simulation = FaultyNFVSimulation(
            network,
            AcceptFirstNodePolicy(1),
            SimulationConfig(horizon=horizon, monitoring_interval=20.0),
            failure_config=failure_config,
        )
        requests = [
            build_request(catalog, source=0, arrival=float(i + 1), holding=holding)
            for i in range(5)
        ]
        return simulation, simulation.run(requests)

    def test_disruption_when_hosting_node_fails(self, catalog):
        # Node 1 hosts everything and fails almost immediately, for a long time.
        failure_config = FailureConfig(
            mean_time_to_failure=10.0, mean_time_to_repair=1e6, edge_only=True, seed=5
        )
        simulation, result = self._run(failure_config, catalog)
        if simulation.report.failure_events and 1 in simulation.failed_nodes:
            assert simulation.report.disrupted_requests > 0
            # Disrupted requests were accepted first.
            assert result.summary.accepted_requests >= simulation.report.disrupted_requests

    def test_failed_node_is_fenced_for_new_requests(self, catalog):
        network = linear_chain_topology(num_edge_nodes=4, link_latency_ms=2.0, seed=7)
        simulation = FaultyNFVSimulation(
            network,
            AcceptFirstNodePolicy(1),
            SimulationConfig(horizon=10.0),
            failure_config=FailureConfig(mean_time_to_failure=1e9, seed=0),
        )
        # Manually drive the failure handler, then check the fence.
        from repro.sim.events import Event, EventType

        simulation._handle_failure(Event.create(1.0, EventType.NODE_FAILURE, payload=1))
        assert simulation.failed_nodes == [1]
        assert not network.node(1).can_host(
            build_request(catalog, source=0).chain.vnf_at(0).demand_for(10.0)
        )
        simulation._handle_recovery(Event.create(2.0, EventType.NODE_RECOVERY, payload=1))
        assert simulation.failed_nodes == []
        assert network.node(1).can_host(
            build_request(catalog, source=0).chain.vnf_at(0).demand_for(10.0)
        )

    def test_no_failures_matches_fault_free_behaviour(self, catalog):
        # Requests arrive one per time unit and hold resources for less than
        # that, so without failures every request fits on node 1.
        reliable = FailureConfig(mean_time_to_failure=1e9, mean_time_to_repair=1.0, seed=0)
        simulation, result = self._run(reliable, catalog, holding=0.9)
        assert simulation.report.failure_events == 0
        assert simulation.report.disrupted_requests == 0
        assert result.summary.accepted_requests == 5

    def test_report_as_dict_and_ratio(self):
        from repro.sim.failures import DisruptionReport

        report = DisruptionReport(failure_events=2, recovery_events=1, disrupted_requests=3)
        assert report.as_dict()["disrupted_requests"] == 3
        assert report.disruption_ratio(accepted_requests=6) == pytest.approx(0.5)
        assert report.disruption_ratio(accepted_requests=0) == 0.0

    def test_capacity_conserved_across_fail_recover_reset_cycles(self, catalog):
        """Fence accounting must conserve capacity through full cycles."""
        from repro.nfv.placement import Placement
        from repro.workloads.scenarios import reference_scenario

        scenario = reference_scenario(
            arrival_rate=1.0, num_edge_nodes=8, horizon=300.0, seed=1
        )
        network = scenario.build_network()
        from repro.baselines import GreedyNearestPolicy

        simulation = FaultyNFVSimulation(
            network,
            GreedyNearestPolicy(),
            SimulationConfig(horizon=300.0, monitoring_interval=25.0),
            failure_config=FailureConfig(
                mean_time_to_failure=40.0, mean_time_to_repair=15.0, seed=3
            ),
        )
        requests = scenario.generate_requests()
        for _ in range(2):  # run twice: the reset path is exercised too
            simulation.run(requests)
            assert simulation.report.failure_events > 0
            assert simulation.report.recovery_events > 0
            assert_capacity_conserved(network)
            # Whatever survived the run is either a fence of a still-failed
            # node or nothing; failed nodes hold zero available capacity.
            for node_id in simulation.failed_nodes:
                assert network.node(node_id).available.is_zero(tol=1e-9)
        simulation.release_fences()
        assert simulation.failed_nodes == []
        assert_capacity_conserved(network)

    def test_fence_absorbs_capacity_freed_on_failed_node(self, catalog):
        """Capacity released on an already-fenced node folds into the fence,
        so a failed node can never regain placeable capacity mid-failure."""
        network = linear_chain_topology(num_edge_nodes=4, link_latency_ms=2.0, seed=7)
        simulation = FaultyNFVSimulation(
            network,
            AcceptFirstNodePolicy(1),
            SimulationConfig(horizon=50.0),
            failure_config=FailureConfig(mean_time_to_failure=1e9, seed=0),
        )
        from repro.nfv.placement import Placement

        # A committed placement on node 1 that the simulation does NOT track
        # (models any out-of-band release while the node is fenced).
        request = build_request(catalog, source=0, arrival=1.0, holding=30.0)
        placement = Placement.build(request, [1] * request.num_vnfs, network)
        placement.commit(network)

        simulation._handle_failure(Event.create(2.0, EventType.NODE_FAILURE, payload=1))
        assert network.node(1).available.is_zero(tol=1e-9)
        # The out-of-band release frees capacity on the fenced node...
        placement.release(network)
        assert not network.node(1).available.is_zero(tol=1e-9)
        # ...and refreshing the fence (as the departure hook does) re-absorbs it.
        simulation._refresh_fence(1)
        assert network.node(1).available.is_zero(tol=1e-9)
        assert_capacity_conserved(network)
        simulation._handle_recovery(Event.create(3.0, EventType.NODE_RECOVERY, payload=1))
        # Full recovery: the node is completely free again.
        assert network.node(1).used.is_zero(tol=1e-9)
        assert_capacity_conserved(network)

    def test_tracked_departure_on_fenced_node_keeps_fence_tight(self, catalog):
        """If a tracked placement's departure ever releases capacity on a
        fenced node, the departure hook refreshes that node's fence."""
        network = linear_chain_topology(num_edge_nodes=4, link_latency_ms=2.0, seed=7)
        simulation = FaultyNFVSimulation(
            network,
            AcceptFirstNodePolicy(1),
            SimulationConfig(horizon=50.0),
            failure_config=FailureConfig(mean_time_to_failure=1e9, seed=0),
        )
        from repro.nfv.placement import Placement

        request = build_request(catalog, source=0, arrival=1.0, holding=30.0)
        placement = Placement.build(request, [1] * request.num_vnfs, network)
        placement.commit(network)
        simulation._active_placements[request.request_id] = placement
        simulation._failed_nodes.add(1)  # fenced state without eviction
        simulation._refresh_fence(1)
        assert network.node(1).available.is_zero(tol=1e-9)
        simulation._handle_departure(
            Event.create(5.0, EventType.REQUEST_DEPARTURE, payload=request.request_id)
        )
        assert request.request_id not in simulation._active_placements
        assert network.node(1).available.is_zero(tol=1e-9)
        assert_capacity_conserved(network)

    def test_rerun_resets_report(self, catalog):
        failure_config = FailureConfig(mean_time_to_failure=20.0, mean_time_to_repair=5.0, seed=4)
        simulation, _ = self._run(failure_config, catalog)
        first_failures = simulation.report.failure_events
        requests = [build_request(catalog, source=0, arrival=1.0, holding=5.0)]
        simulation.run(requests)
        # The report describes only the latest run.
        assert simulation.report.failure_events <= first_failures or first_failures == 0


class TestFaultySimulationEdgeCases:
    """ISSUE 7 satellite: failure-handling corner cases."""

    def _empty_simulation(self, num_nodes=4):
        network = linear_chain_topology(
            num_edge_nodes=num_nodes, link_latency_ms=2.0, seed=7
        )
        simulation = FaultyNFVSimulation(
            network,
            AcceptFirstNodePolicy(1),
            SimulationConfig(horizon=50.0),
            failure_config=FailureConfig(mean_time_to_failure=1e9, seed=0),
        )
        return network, simulation

    def test_failure_on_empty_substrate(self):
        """A failure with zero active placements disrupts nothing and the
        fence consumes exactly the node's full (untouched) capacity."""
        network, simulation = self._empty_simulation()
        simulation._handle_failure(
            Event.create(1.0, EventType.NODE_FAILURE, payload=1)
        )
        assert simulation.report.disrupted_requests == 0
        assert simulation.report.failure_events == 1
        assert network.node(1).available.is_zero(tol=1e-9)
        assert_capacity_conserved(network)
        simulation._handle_recovery(
            Event.create(2.0, EventType.NODE_RECOVERY, payload=1)
        )
        assert network.node(1).used.is_zero(tol=1e-9)
        assert_capacity_conserved(network)

    def test_back_to_back_fail_recover_same_node_same_step(self):
        """FAIL and RECOVER of one node at the same timestamp (in schedule
        order) must leave the node fully healthy — and the duplicate-safe
        handlers must ignore repeated FAIL/RECOVER at that instant."""
        network, simulation = self._empty_simulation()
        t = 5.0
        simulation._handle_failure(Event.create(t, EventType.NODE_FAILURE, payload=2))
        simulation._handle_failure(Event.create(t, EventType.NODE_FAILURE, payload=2))
        assert simulation.report.failure_events == 1  # duplicate ignored
        simulation._handle_recovery(Event.create(t, EventType.NODE_RECOVERY, payload=2))
        simulation._handle_recovery(Event.create(t, EventType.NODE_RECOVERY, payload=2))
        assert simulation.report.recovery_events == 1  # duplicate ignored
        assert simulation.failed_nodes == []
        assert network.node(2).used.is_zero(tol=1e-9)
        assert_capacity_conserved(network)
        # And a second full cycle at the same instant still round-trips.
        simulation._handle_failure(Event.create(t, EventType.NODE_FAILURE, payload=2))
        assert network.node(2).available.is_zero(tol=1e-9)
        simulation._handle_recovery(Event.create(t, EventType.NODE_RECOVERY, payload=2))
        assert network.node(2).used.is_zero(tol=1e-9)
        assert_capacity_conserved(network)

    def test_all_nodes_simultaneously_failed_fence_accounting(self, catalog):
        """With every node down at once, all capacity is fenced, the active
        placement is disrupted exactly once, and recovery restores a fully
        free, conserved substrate."""
        network, simulation = self._empty_simulation()
        request = build_request(catalog, source=0, arrival=1.0, holding=40.0)
        from repro.nfv.placement import Placement

        placement = Placement.build(request, [1] * request.num_vnfs, network)
        placement.commit(network)
        simulation._active_placements[request.request_id] = placement

        t = 2.0
        for node_id in network.node_ids:
            simulation._handle_failure(
                Event.create(t, EventType.NODE_FAILURE, payload=node_id)
            )
        assert sorted(simulation.failed_nodes) == sorted(network.node_ids)
        assert simulation.report.disrupted_requests == 1
        assert simulation._active_placements == {}
        for node_id in network.node_ids:
            assert network.node(node_id).available.is_zero(tol=1e-9)
        assert_capacity_conserved(network)
        for node_id in network.node_ids:
            simulation._handle_recovery(
                Event.create(t + 1.0, EventType.NODE_RECOVERY, payload=node_id)
            )
        assert simulation.failed_nodes == []
        for node_id in network.node_ids:
            assert network.node(node_id).used.is_zero(tol=1e-9)
        assert_capacity_conserved(network)


class TestFaultDomains:
    def test_domains_derived_from_metro_names(self):
        network = metro_edge_cloud_topology(
            TopologyConfig(num_edge_nodes=8, num_metros=4, seed=3)
        )
        domains = fault_domains_from_network(network)
        # Every edge node appears in exactly one domain, grouped by metro.
        members = [n for d in domains for n in d.node_ids]
        assert sorted(members) == sorted(network.edge_node_ids)
        assert len(domains) == 4
        for domain in domains:
            for node_id in domain.node_ids:
                assert network.node(node_id).name.startswith(domain.name)

    def test_unnamed_nodes_fall_back_to_singletons(self):
        network = linear_chain_topology(num_edge_nodes=3, seed=0)
        domains = fault_domains_from_network(network)
        assert all(len(d.node_ids) == 1 for d in domains)

    def test_domain_validation(self):
        with pytest.raises(ValueError):
            FaultDomain(name="empty", node_ids=())
        with pytest.raises(ValueError):
            DomainFailureInjector([], DomainFailureConfig())
        dup = FaultDomain(name="x", node_ids=(0,))
        with pytest.raises(ValueError, match="unique"):
            DomainFailureInjector([dup, dup])

    def test_unknown_member_rejected_at_schedule_time(self):
        network = linear_chain_topology(num_edge_nodes=3, seed=0)
        injector = DomainFailureInjector(
            [FaultDomain(name="ghost", node_ids=(99,))],
            DomainFailureConfig(mean_time_to_failure=10.0, seed=0),
        )
        with pytest.raises(ValueError, match="unknown nodes"):
            injector.schedule(network, horizon=100.0)

    def test_correlated_schedule_fails_domain_together(self):
        network = metro_edge_cloud_topology(
            TopologyConfig(num_edge_nodes=8, num_metros=4, seed=3)
        )
        domains = fault_domains_from_network(network)
        injector = DomainFailureInjector(
            domains,
            DomainFailureConfig(
                mean_time_to_failure=60.0, mean_time_to_repair=10.0, seed=9
            ),
        )
        events = injector.schedule(network, horizon=400.0)
        assert events and [e.time for e in events] == sorted(e.time for e in events)
        node_failures = [e for e in events if e.kind == "node_failure"]
        assert node_failures, "expected at least one domain failure over ~6x MTTF"
        # All member nodes of a domain fail at the same instant.
        by_domain_time = {}
        for event in node_failures:
            by_domain_time.setdefault((event.domain, event.time), set()).add(
                event.node_id
            )
        domain_members = {d.name: set(d.node_ids) for d in domains}
        for (name, _), failed_together in by_domain_time.items():
            assert failed_together == domain_members[name]
        # Incident links of the domain go down at the same instant too.
        link_failures = [e for e in events if e.kind == "link_failure"]
        assert link_failures
        for event in link_failures:
            assert event.domain is not None
            assert set(event.endpoints) & domain_members[event.domain]

    def test_independent_link_failures_when_configured(self):
        network = metro_edge_cloud_topology(
            TopologyConfig(num_edge_nodes=6, num_metros=3, seed=3)
        )
        injector = DomainFailureInjector(
            fault_domains_from_network(network),
            DomainFailureConfig(
                mean_time_to_failure=1e9,  # domains never fail
                fail_incident_links=False,
                link_mean_time_to_failure=50.0,
                link_mean_time_to_repair=10.0,
                seed=2,
            ),
        )
        events = injector.schedule(network, horizon=500.0)
        assert events
        assert all(e.kind in ("link_failure", "link_recovery") for e in events)
        assert all(e.domain is None for e in events)

    def test_schedule_deterministic_with_seed(self):
        network = metro_edge_cloud_topology(
            TopologyConfig(num_edge_nodes=6, num_metros=3, seed=3)
        )
        config = DomainFailureConfig(
            mean_time_to_failure=40.0, mean_time_to_repair=10.0, seed=7
        )
        domains = fault_domains_from_network(network)
        a = DomainFailureInjector(domains, config).schedule(network, 300.0)
        b = DomainFailureInjector(domains, config).schedule(network, 300.0)
        assert a == b


class TestLinkFailures:
    def _simulation_with_committed_chain(self, catalog):
        network = linear_chain_topology(
            num_edge_nodes=4, link_latency_ms=2.0, seed=7
        )
        simulation = FaultyNFVSimulation(
            network,
            AcceptFirstNodePolicy(1),
            SimulationConfig(horizon=50.0),
            failure_config=FailureConfig(mean_time_to_failure=1e9, seed=0),
        )
        from repro.nfv.placement import Placement

        # Source 0 -> VNFs on node 1: the chain traverses link (0, 1).
        request = build_request(catalog, source=0, arrival=1.0, holding=40.0)
        placement = Placement.build(request, [1] * request.num_vnfs, network)
        placement.commit(network)
        simulation._active_placements[request.request_id] = placement
        return network, simulation, request

    def test_link_failure_evicts_traversing_chain_and_fences_bandwidth(
        self, catalog
    ):
        network, simulation, request = self._simulation_with_committed_chain(catalog)
        simulation._handle_link_failure(
            Event.create(2.0, EventType.LINK_FAILURE, payload=(1, 0))
        )
        assert simulation.failed_links == [(0, 1)]  # canonicalized
        assert simulation.report.link_failure_events == 1
        assert simulation.report.disrupted_requests == 1
        assert request.request_id not in simulation._active_placements
        assert network.link(0, 1).available_bandwidth == pytest.approx(0.0)
        assert_capacity_conserved(network)
        simulation._handle_link_recovery(
            Event.create(3.0, EventType.LINK_RECOVERY, payload=(0, 1))
        )
        assert simulation.failed_links == []
        assert simulation.report.link_recovery_events == 1
        assert network.link(0, 1).available_bandwidth == pytest.approx(
            network.link(0, 1).bandwidth_capacity
        )

    def test_unaffected_chain_survives_link_failure(self, catalog):
        network, simulation, request = self._simulation_with_committed_chain(catalog)
        # Link (2, 3) carries nothing of the chain.
        simulation._handle_link_failure(
            Event.create(2.0, EventType.LINK_FAILURE, payload=(2, 3))
        )
        assert simulation.report.disrupted_requests == 0
        assert request.request_id in simulation._active_placements
        simulation._handle_link_recovery(
            Event.create(3.0, EventType.LINK_RECOVERY, payload=(2, 3))
        )

    def test_unknown_link_ignored(self, catalog):
        network, simulation, _ = self._simulation_with_committed_chain(catalog)
        simulation._handle_link_failure(
            Event.create(2.0, EventType.LINK_FAILURE, payload=(0, 3))
        )
        assert simulation.failed_links == []
        assert simulation.report.link_failure_events == 0

    def test_domain_chaos_end_to_end_conserves_capacity(self, catalog):
        from repro.baselines import GreedyNearestPolicy
        from repro.workloads.scenarios import reference_scenario

        scenario = reference_scenario(
            arrival_rate=1.0, num_edge_nodes=8, horizon=300.0, seed=1
        )
        network = scenario.build_network()
        simulation = FaultyNFVSimulation(
            network,
            GreedyNearestPolicy(),
            SimulationConfig(horizon=300.0, monitoring_interval=25.0),
            domain_config=DomainFailureConfig(
                mean_time_to_failure=60.0, mean_time_to_repair=20.0, seed=3
            ),
        )
        # Domain-only chaos: no independent per-node injector is created.
        assert simulation.injector is None
        assert simulation.domain_injector is not None
        simulation.run(scenario.generate_requests())
        assert simulation.report.failure_events > 0
        assert simulation.report.link_failure_events > 0
        assert_capacity_conserved(network)
        for node_id in simulation.failed_nodes:
            assert network.node(node_id).available.is_zero(tol=1e-9)
        for endpoints in simulation.failed_links:
            assert network.link(*endpoints).available_bandwidth == pytest.approx(
                0.0, abs=1e-9
            )
        simulation.release_fences()
        assert simulation.failed_nodes == [] and simulation.failed_links == []
        assert_capacity_conserved(network)
