"""Tests for node-failure injection and the faulty simulation."""

import numpy as np
import pytest

from repro.sim.events import Event, EventType
from repro.sim.failures import (
    FailureConfig,
    FailureInjector,
    FaultyNFVSimulation,
)
from repro.sim.simulation import SimulationConfig
from repro.substrate.topology import TopologyConfig, linear_chain_topology, metro_edge_cloud_topology
from tests.conftest import build_request
from tests.test_simulation import AcceptFirstNodePolicy


def assert_capacity_conserved(network):
    """Per node: the sum of live allocations must equal the used vector, and
    used + available must equal capacity (the conservation invariant)."""
    for node in network.nodes():
        allocated = sum(
            (demand.as_array() for demand in node._allocations.values()),
            np.zeros(3),
        )
        np.testing.assert_allclose(allocated, node._used_arr, atol=1e-6)
        np.testing.assert_allclose(
            node._used_arr + node.available.as_array(),
            node._capacity_arr,
            atol=1e-6,
        )


class TestFailureConfig:
    def test_steady_state_availability(self):
        config = FailureConfig(mean_time_to_failure=900.0, mean_time_to_repair=100.0)
        assert config.steady_state_availability == pytest.approx(0.9)

    def test_invalid_parameters_rejected(self):
        with pytest.raises(ValueError):
            FailureConfig(mean_time_to_failure=0.0)
        with pytest.raises(ValueError):
            FailureConfig(mean_time_to_repair=-1.0)


class TestFailureInjector:
    def test_schedule_sorted_and_within_horizon(self):
        network = metro_edge_cloud_topology(TopologyConfig(num_edge_nodes=8, seed=1))
        injector = FailureInjector(FailureConfig(mean_time_to_failure=50.0, mean_time_to_repair=10.0, seed=3))
        events = injector.schedule(network, horizon=500.0)
        assert events, "expected at least one failure over 10x the MTTF"
        times = [e.time for e in events]
        assert times == sorted(times)
        assert all(0 < t <= 500.0 for t in times)

    def test_per_node_events_alternate(self):
        network = linear_chain_topology(num_edge_nodes=3, seed=0)
        injector = FailureInjector(FailureConfig(mean_time_to_failure=20.0, mean_time_to_repair=5.0, seed=1))
        events = injector.schedule(network, horizon=300.0)
        for node_id in network.node_ids:
            node_events = [e for e in events if e.node_id == node_id]
            for first, second in zip(node_events, node_events[1:]):
                assert first.is_failure != second.is_failure
            if node_events:
                assert node_events[0].is_failure

    def test_edge_only_scope(self):
        network = metro_edge_cloud_topology(TopologyConfig(num_edge_nodes=6, seed=2))
        cloud = set(network.cloud_node_ids)
        events = FailureInjector(
            FailureConfig(mean_time_to_failure=10.0, mean_time_to_repair=2.0, seed=2)
        ).schedule(network, horizon=200.0)
        assert all(e.node_id not in cloud for e in events)

    def test_deterministic_with_seed(self):
        network = linear_chain_topology(num_edge_nodes=4, seed=0)
        config = FailureConfig(mean_time_to_failure=30.0, mean_time_to_repair=5.0, seed=11)
        a = FailureInjector(config).schedule(network, 200.0)
        b = FailureInjector(config).schedule(network, 200.0)
        assert a == b

    def test_reliable_nodes_rarely_fail(self):
        network = linear_chain_topology(num_edge_nodes=4, seed=0)
        events = FailureInjector(
            FailureConfig(mean_time_to_failure=1e9, mean_time_to_repair=1.0, seed=0)
        ).schedule(network, horizon=100.0)
        assert events == []


class TestFaultySimulation:
    def _run(self, failure_config, catalog, horizon=100.0, holding=200.0):
        network = linear_chain_topology(num_edge_nodes=4, link_latency_ms=2.0, seed=7)
        simulation = FaultyNFVSimulation(
            network,
            AcceptFirstNodePolicy(1),
            SimulationConfig(horizon=horizon, monitoring_interval=20.0),
            failure_config=failure_config,
        )
        requests = [
            build_request(catalog, source=0, arrival=float(i + 1), holding=holding)
            for i in range(5)
        ]
        return simulation, simulation.run(requests)

    def test_disruption_when_hosting_node_fails(self, catalog):
        # Node 1 hosts everything and fails almost immediately, for a long time.
        failure_config = FailureConfig(
            mean_time_to_failure=10.0, mean_time_to_repair=1e6, edge_only=True, seed=5
        )
        simulation, result = self._run(failure_config, catalog)
        if simulation.report.failure_events and 1 in simulation.failed_nodes:
            assert simulation.report.disrupted_requests > 0
            # Disrupted requests were accepted first.
            assert result.summary.accepted_requests >= simulation.report.disrupted_requests

    def test_failed_node_is_fenced_for_new_requests(self, catalog):
        network = linear_chain_topology(num_edge_nodes=4, link_latency_ms=2.0, seed=7)
        simulation = FaultyNFVSimulation(
            network,
            AcceptFirstNodePolicy(1),
            SimulationConfig(horizon=10.0),
            failure_config=FailureConfig(mean_time_to_failure=1e9, seed=0),
        )
        # Manually drive the failure handler, then check the fence.
        from repro.sim.events import Event, EventType

        simulation._handle_failure(Event.create(1.0, EventType.NODE_FAILURE, payload=1))
        assert simulation.failed_nodes == [1]
        assert not network.node(1).can_host(
            build_request(catalog, source=0).chain.vnf_at(0).demand_for(10.0)
        )
        simulation._handle_recovery(Event.create(2.0, EventType.NODE_RECOVERY, payload=1))
        assert simulation.failed_nodes == []
        assert network.node(1).can_host(
            build_request(catalog, source=0).chain.vnf_at(0).demand_for(10.0)
        )

    def test_no_failures_matches_fault_free_behaviour(self, catalog):
        # Requests arrive one per time unit and hold resources for less than
        # that, so without failures every request fits on node 1.
        reliable = FailureConfig(mean_time_to_failure=1e9, mean_time_to_repair=1.0, seed=0)
        simulation, result = self._run(reliable, catalog, holding=0.9)
        assert simulation.report.failure_events == 0
        assert simulation.report.disrupted_requests == 0
        assert result.summary.accepted_requests == 5

    def test_report_as_dict_and_ratio(self):
        from repro.sim.failures import DisruptionReport

        report = DisruptionReport(failure_events=2, recovery_events=1, disrupted_requests=3)
        assert report.as_dict()["disrupted_requests"] == 3
        assert report.disruption_ratio(accepted_requests=6) == pytest.approx(0.5)
        assert report.disruption_ratio(accepted_requests=0) == 0.0

    def test_capacity_conserved_across_fail_recover_reset_cycles(self, catalog):
        """Fence accounting must conserve capacity through full cycles."""
        from repro.nfv.placement import Placement
        from repro.workloads.scenarios import reference_scenario

        scenario = reference_scenario(
            arrival_rate=1.0, num_edge_nodes=8, horizon=300.0, seed=1
        )
        network = scenario.build_network()
        from repro.baselines import GreedyNearestPolicy

        simulation = FaultyNFVSimulation(
            network,
            GreedyNearestPolicy(),
            SimulationConfig(horizon=300.0, monitoring_interval=25.0),
            failure_config=FailureConfig(
                mean_time_to_failure=40.0, mean_time_to_repair=15.0, seed=3
            ),
        )
        requests = scenario.generate_requests()
        for _ in range(2):  # run twice: the reset path is exercised too
            simulation.run(requests)
            assert simulation.report.failure_events > 0
            assert simulation.report.recovery_events > 0
            assert_capacity_conserved(network)
            # Whatever survived the run is either a fence of a still-failed
            # node or nothing; failed nodes hold zero available capacity.
            for node_id in simulation.failed_nodes:
                assert network.node(node_id).available.is_zero(tol=1e-9)
        simulation.release_fences()
        assert simulation.failed_nodes == []
        assert_capacity_conserved(network)

    def test_fence_absorbs_capacity_freed_on_failed_node(self, catalog):
        """Capacity released on an already-fenced node folds into the fence,
        so a failed node can never regain placeable capacity mid-failure."""
        network = linear_chain_topology(num_edge_nodes=4, link_latency_ms=2.0, seed=7)
        simulation = FaultyNFVSimulation(
            network,
            AcceptFirstNodePolicy(1),
            SimulationConfig(horizon=50.0),
            failure_config=FailureConfig(mean_time_to_failure=1e9, seed=0),
        )
        from repro.nfv.placement import Placement

        # A committed placement on node 1 that the simulation does NOT track
        # (models any out-of-band release while the node is fenced).
        request = build_request(catalog, source=0, arrival=1.0, holding=30.0)
        placement = Placement.build(request, [1] * request.num_vnfs, network)
        placement.commit(network)

        simulation._handle_failure(Event.create(2.0, EventType.NODE_FAILURE, payload=1))
        assert network.node(1).available.is_zero(tol=1e-9)
        # The out-of-band release frees capacity on the fenced node...
        placement.release(network)
        assert not network.node(1).available.is_zero(tol=1e-9)
        # ...and refreshing the fence (as the departure hook does) re-absorbs it.
        simulation._refresh_fence(1)
        assert network.node(1).available.is_zero(tol=1e-9)
        assert_capacity_conserved(network)
        simulation._handle_recovery(Event.create(3.0, EventType.NODE_RECOVERY, payload=1))
        # Full recovery: the node is completely free again.
        assert network.node(1).used.is_zero(tol=1e-9)
        assert_capacity_conserved(network)

    def test_tracked_departure_on_fenced_node_keeps_fence_tight(self, catalog):
        """If a tracked placement's departure ever releases capacity on a
        fenced node, the departure hook refreshes that node's fence."""
        network = linear_chain_topology(num_edge_nodes=4, link_latency_ms=2.0, seed=7)
        simulation = FaultyNFVSimulation(
            network,
            AcceptFirstNodePolicy(1),
            SimulationConfig(horizon=50.0),
            failure_config=FailureConfig(mean_time_to_failure=1e9, seed=0),
        )
        from repro.nfv.placement import Placement

        request = build_request(catalog, source=0, arrival=1.0, holding=30.0)
        placement = Placement.build(request, [1] * request.num_vnfs, network)
        placement.commit(network)
        simulation._active_placements[request.request_id] = placement
        simulation._failed_nodes.add(1)  # fenced state without eviction
        simulation._refresh_fence(1)
        assert network.node(1).available.is_zero(tol=1e-9)
        simulation._handle_departure(
            Event.create(5.0, EventType.REQUEST_DEPARTURE, payload=request.request_id)
        )
        assert request.request_id not in simulation._active_placements
        assert network.node(1).available.is_zero(tol=1e-9)
        assert_capacity_conserved(network)

    def test_rerun_resets_report(self, catalog):
        failure_config = FailureConfig(mean_time_to_failure=20.0, mean_time_to_repair=5.0, seed=4)
        simulation, _ = self._run(failure_config, catalog)
        first_failures = simulation.report.failure_events
        requests = [build_request(catalog, source=0, arrival=1.0, holding=5.0)]
        simulation.run(requests)
        # The report describes only the latest run.
        assert simulation.report.failure_events <= first_failures or first_failures == 0
