"""Vectorized hot-path tests: batched nn ops and contiguous replay sampling.

Covers the invariants behind the batched training refactor:

* a batched forward/backward pass produces the same numbers as per-sample
  passes (within floating-point tolerance),
* fused activation derivatives match the definitional ones,
* replay buffers return correctly shaped, seed-reproducible contiguous
  batches, and
* the parallel experiment helpers give results identical to serial runs.
"""

import json

import numpy as np
import pytest

from repro.agents.dqn import DQNAgent, DQNConfig
from repro.agents.replay import PrioritizedReplayBuffer, ReplayBuffer, Transition
from repro.experiments.parallel import (
    ResultCache,
    config_hash,
    derive_worker_seeds,
    run_parallel,
)
from repro.nn.activations import _ACTIVATIONS, get_activation
from repro.nn.network import MLP
from repro.nn.optimizers import Adam

STATE_DIM = 6
NUM_ACTIONS = 4


def random_transition(rng, with_mask=True, done=False):
    return Transition(
        state=rng.normal(size=STATE_DIM),
        action=int(rng.integers(NUM_ACTIONS)),
        reward=float(rng.normal()),
        next_state=rng.normal(size=STATE_DIM),
        done=done,
        next_mask=np.ones(NUM_ACTIONS, dtype=bool) if with_mask else None,
    )


class TestBatchedForwardBackward:
    def test_batched_forward_matches_per_sample(self):
        network = MLP([STATE_DIM, 16, 8, 3], seed=0)
        inputs = np.random.default_rng(1).normal(size=(32, STATE_DIM))
        batched = network.forward(inputs)
        for i in range(len(inputs)):
            single = network.forward(inputs[i])
            np.testing.assert_allclose(batched[i], single, rtol=1e-12, atol=1e-12)

    @pytest.mark.parametrize("activation", ["relu", "tanh", "sigmoid"])
    def test_batched_backward_matches_per_sample_sum(self, activation):
        """Parameter gradients of a batch equal the sum over its samples."""
        rng = np.random.default_rng(2)
        inputs = rng.normal(size=(8, STATE_DIM))
        output_grad = rng.normal(size=(8, 3))

        batched = MLP([STATE_DIM, 16, 3], hidden_activation=activation, seed=0)
        batched.forward(inputs, training=True)
        batched.zero_grad()
        batched.backward(output_grad)
        batched_grads = [dict(g) for _, g in batched.parameter_groups()]

        accumulated = MLP([STATE_DIM, 16, 3], hidden_activation=activation, seed=0)
        accumulated.zero_grad()
        for i in range(len(inputs)):
            accumulated.forward(inputs[i : i + 1], training=True)
            accumulated.backward(output_grad[i : i + 1])
        per_sample_grads = [dict(g) for _, g in accumulated.parameter_groups()]

        for batch_layer, sample_layer in zip(batched_grads, per_sample_grads):
            for name in batch_layer:
                np.testing.assert_allclose(
                    batch_layer[name], sample_layer[name], rtol=1e-9, atol=1e-9
                )

    def test_fused_activation_derivatives_match_definitional(self):
        z = np.linspace(-3.0, 3.0, 64).reshape(8, 8)
        for name in _ACTIVATIONS:
            activation = get_activation(name)
            output = activation.forward(z)
            np.testing.assert_allclose(
                activation.derivative_from_output(z, output),
                activation.derivative(z),
                rtol=1e-12,
                atol=1e-12,
                err_msg=name,
            )

    def test_apply_gradient_step_matches_manual_sequence(self):
        rng = np.random.default_rng(3)
        inputs = rng.normal(size=(4, STATE_DIM))
        grad = rng.normal(size=(4, 3))

        helper = MLP([STATE_DIM, 8, 3], seed=5)
        manual = helper.clone(seed=5)
        helper.forward(inputs, training=True)
        manual.forward(inputs, training=True)

        helper.apply_gradient_step(grad, Adam(1e-2), max_grad_norm=1.0)

        from repro.nn.optimizers import clip_gradients

        manual.zero_grad()
        manual.backward(grad)
        groups = manual.parameter_groups()
        clip_gradients(groups, 1.0)
        Adam(1e-2).step(groups)

        for a, b in zip(helper.get_parameters(), manual.get_parameters()):
            for name in a:
                np.testing.assert_allclose(a[name], b[name], rtol=1e-12)


class TestDQNBatchedUpdate:
    @pytest.mark.parametrize("dueling", [False, True])
    def test_update_is_seed_reproducible(self, dueling):
        def trained_weights():
            config = DQNConfig(
                hidden_layers=(16,),
                batch_size=8,
                min_replay_size=8,
                dueling=dueling,
            )
            agent = DQNAgent(STATE_DIM, NUM_ACTIONS, config=config, seed=7)
            rng = np.random.default_rng(7)
            for _ in range(32):
                agent.replay.add(random_transition(rng))
            for _ in range(4):
                agent._learn_from_batch(agent.replay.sample(8))
            return agent.online_network.get_parameters()

        first, second = trained_weights(), trained_weights()
        for a, b in zip(first, second):
            for name in a:
                np.testing.assert_array_equal(a[name], b[name])

    def test_update_reduces_td_error_on_fixed_batch(self):
        config = DQNConfig(
            hidden_layers=(32,), batch_size=16, min_replay_size=16, learning_rate=1e-2
        )
        agent = DQNAgent(STATE_DIM, NUM_ACTIONS, config=config, seed=0)
        rng = np.random.default_rng(0)
        for _ in range(64):
            agent.replay.add(random_transition(rng))
        first = agent._learn_from_batch(agent.replay.sample(16))
        for _ in range(50):
            diagnostics = agent._learn_from_batch(agent.replay.sample(16))
        assert diagnostics["loss"] < first["loss"]


class TestReplayBatches:
    def test_batch_shapes_and_contiguity(self):
        buffer = ReplayBuffer(capacity=128, seed=0)
        rng = np.random.default_rng(0)
        for _ in range(40):
            buffer.add(random_transition(rng))
        batch = buffer.sample(16)
        assert batch.states.shape == (16, STATE_DIM)
        assert batch.next_states.shape == (16, STATE_DIM)
        assert batch.actions.shape == (16,)
        assert batch.rewards.shape == (16,)
        assert batch.dones.shape == (16,)
        assert batch.next_masks.shape == (16, NUM_ACTIONS)
        for array in (batch.states, batch.next_states, batch.next_masks):
            assert array.flags["C_CONTIGUOUS"]

    def test_sampling_is_seed_reproducible(self):
        def sample_once():
            buffer = ReplayBuffer(capacity=64, seed=42)
            rng = np.random.default_rng(3)
            for _ in range(30):
                buffer.add(random_transition(rng))
            batch = buffer.sample(10)
            # Batch arrays are reusable scratch buffers: copy to keep them.
            return batch.states.copy(), batch.indices.copy()

        (states_a, idx_a), (states_b, idx_b) = sample_once(), sample_once()
        np.testing.assert_array_equal(idx_a, idx_b)
        np.testing.assert_array_equal(states_a, states_b)

    def test_batch_buffers_are_reused_across_samples(self):
        buffer = ReplayBuffer(capacity=64, seed=0)
        rng = np.random.default_rng(1)
        for _ in range(20):
            buffer.add(random_transition(rng))
        first = buffer.sample(8)
        second = buffer.sample(8)
        assert first.states is second.states  # pre-allocated, not re-allocated

    def test_sample_values_round_trip_storage(self):
        buffer = ReplayBuffer(capacity=8, seed=0)
        transitions = [random_transition(np.random.default_rng(i)) for i in range(8)]
        for transition in transitions:
            buffer.add(transition)
        batch = buffer.sample(32)
        for row, index in enumerate(batch.indices):
            expected = transitions[index]
            np.testing.assert_allclose(batch.states[row], expected.state)
            np.testing.assert_allclose(batch.next_states[row], expected.next_state)
            assert batch.actions[row] == expected.action
            assert batch.rewards[row] == pytest.approx(expected.reward)

    def test_mismatched_widths_rejected_while_populated(self):
        buffer = ReplayBuffer(capacity=8, seed=0)
        rng = np.random.default_rng(0)
        buffer.add(random_transition(rng))
        with pytest.raises(ValueError, match="state width"):
            buffer.add(
                Transition(
                    state=np.zeros(STATE_DIM + 2),
                    action=0,
                    reward=0.0,
                    next_state=np.zeros(STATE_DIM + 2),
                    done=False,
                )
            )
        with pytest.raises(ValueError, match="next_mask width"):
            transition = random_transition(rng)
            buffer.add(
                Transition(
                    state=transition.state,
                    action=0,
                    reward=0.0,
                    next_state=transition.next_state,
                    done=False,
                    next_mask=np.ones(NUM_ACTIONS + 1, dtype=bool),
                )
            )
        # After clear() the buffer may be repurposed at a new width.
        buffer.clear()
        buffer.add(
            Transition(
                state=np.zeros(STATE_DIM + 2),
                action=0,
                reward=0.0,
                next_state=np.zeros(STATE_DIM + 2),
                done=False,
            )
        )
        assert buffer.sample(2).states.shape == (2, STATE_DIM + 2)

    def test_masks_reappear_once_maskless_rows_evicted(self):
        buffer = ReplayBuffer(capacity=4, seed=0)
        rng = np.random.default_rng(0)
        buffer.add(random_transition(rng, with_mask=False))
        for _ in range(3):
            buffer.add(random_transition(rng))
        assert buffer.sample(4).next_masks is None
        # A fourth masked add evicts the maskless row (FIFO), so batches
        # carry masks again.
        buffer.add(random_transition(rng))
        assert buffer.sample(4).next_masks is not None

    def test_prioritized_sampling_reproducible_and_weighted(self):
        def sample_once():
            buffer = PrioritizedReplayBuffer(capacity=64, seed=9)
            rng = np.random.default_rng(5)
            for _ in range(20):
                buffer.add(random_transition(rng))
            buffer.update_priorities(np.arange(5), np.linspace(1.0, 5.0, 5))
            batch = buffer.sample(12)
            return batch.indices.copy(), batch.weights.copy()

        (idx_a, w_a), (idx_b, w_b) = sample_once(), sample_once()
        np.testing.assert_array_equal(idx_a, idx_b)
        np.testing.assert_allclose(w_a, w_b)
        assert w_a.max() == pytest.approx(1.0)


class TestParallelHelpers:
    def test_run_parallel_matches_serial(self):
        tasks = [(i, 3) for i in range(6)]
        assert run_parallel(pow, tasks, max_workers=2) == [
            pow(*args) for args in tasks
        ]

    def test_derive_worker_seeds_deterministic_and_distinct(self):
        seeds = derive_worker_seeds(0, ["a", "b", "c"])
        assert seeds == derive_worker_seeds(0, ["a", "b", "c"])
        assert len(set(seeds)) == 3

    def test_config_hash_stable_and_value_sensitive(self):
        assert config_hash({"a": 1, "b": 2}) == config_hash({"b": 2, "a": 1})
        assert config_hash({"a": 1}) != config_hash({"a": 2})

    def test_config_hash_rejects_identity_based_objects(self):
        class Opaque:
            pass

        with pytest.raises(ValueError, match="value-based representation"):
            config_hash(Opaque())

    def test_result_cache_round_trip(self, tmp_path):
        cache = ResultCache(tmp_path)
        calls = []

        def compute():
            calls.append(1)
            return {"series": [1.0, 2.0]}

        data, hit = cache.get_or_compute("fig", {"n": 4}, compute)
        assert not hit and data == {"series": [1.0, 2.0]}
        data, hit = cache.get_or_compute("fig", {"n": 4}, compute)
        assert hit and data == {"series": [1.0, 2.0]} and len(calls) == 1
        data, hit = cache.get_or_compute("fig", {"n": 5}, compute)
        assert not hit and len(calls) == 2

    def test_result_cache_store_is_atomic(self, tmp_path):
        cache = ResultCache(tmp_path)
        path = cache.store("fig", {"series": [1.0]}, {"n": 4})
        assert path is not None and path.parent == tmp_path
        # No temp file survives the write, and an overwrite of the same key
        # leaves exactly one complete JSON payload behind.
        assert list(tmp_path.glob("*.tmp")) == []
        assert list(tmp_path.glob(".*.tmp")) == []
        cache.store("fig", {"series": [2.0]}, {"n": 4})
        assert sorted(tmp_path.iterdir()) == [path]
        with path.open("r", encoding="utf-8") as handle:
            assert json.load(handle) == {"series": [2.0]}

    def test_result_cache_store_cleans_temp_on_failure(self, tmp_path, monkeypatch):
        cache = ResultCache(tmp_path)

        def boom(src, dst):
            raise OSError("simulated rename failure")

        monkeypatch.setattr("repro.experiments.parallel.os.replace", boom)
        with pytest.raises(OSError, match="simulated rename failure"):
            cache.store("fig", {"series": [1.0]}, {"n": 4})
        assert list(tmp_path.iterdir()) == []
