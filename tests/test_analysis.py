"""reprolint: fixture-driven rule tests plus the repo-clean gate.

Every RPLxxx rule gets at least one triggering fixture (the rule fires, at
the expected sites) and one clean fixture (the conforming idiom passes).
The integration test at the bottom runs the full analyzer — default
committed configuration, every rule enabled — over ``src``, ``benchmarks``
and ``tests`` and asserts zero findings: the tree itself is the ultimate
clean fixture, and any future contract violation fails tier-1 here.
"""

from __future__ import annotations

import json
from pathlib import Path

import pytest

from repro.analysis import (
    AnalysisConfig,
    FRAMEWORK_RULES,
    RuleScope,
    all_rules,
    analyze_paths,
    analyze_source,
    default_config,
    render_json,
    render_text,
)
from repro.analysis.cli import main as cli_main

REPO_ROOT = Path(__file__).resolve().parent.parent
FIXTURES = REPO_ROOT / "tests" / "fixtures" / "analysis"

#: Options mirroring the real RPL105/RPL107 configuration, retargeted at
#: the fixture modules.
RPL105_OPTIONS = {
    "pairs": {"_node_used": "_node_used_py", "_link_used": "_link_used_py"},
    "resync_methods": ["_release_record"],
}
RPL107_OPTIONS = {
    "events_module": "tests/fixtures/analysis/rpl107_events_trigger.py",
    "enum_name": "EventType",
    "handler_modules": ["tests/fixtures/analysis/rpl107_handlers.py"],
    "register_methods": ["on"],
}


def run_fixture(name, select, options=None):
    config = AnalysisConfig(select=list(select), options=options or {})
    return analyze_paths(
        [str(FIXTURES / name)], config=config, root=REPO_ROOT
    )


class TestRuleCatalog:
    def test_all_seven_contract_rules_registered(self):
        assert sorted(all_rules()) == [
            "RPL101", "RPL102", "RPL103", "RPL104",
            "RPL105", "RPL106", "RPL107",
        ]

    def test_framework_rules_reserved(self):
        assert set(FRAMEWORK_RULES) == {"RPL001", "RPL002"}


# Each entry: (trigger fixture, rule id, expected finding count,
#              expected symbols subset, clean fixture, options)
RULE_CASES = [
    ("rpl101_trigger.py", "RPL101", 4,
     {"numpy.random.rand", "random.random", "numpy.random.default_rng",
      "random.Random"},
     "rpl101_clean.py", None),
    ("rpl102_trigger.py", "RPL102", 4,
     {"time.time", "time.perf_counter", "datetime.datetime.now"},
     "rpl102_clean.py", None),
    ("rpl103_trigger.py", "RPL103", 4, {"id"}, "rpl103_clean.py", None),
    ("rpl104_trigger.py", "RPL104", 3,
     {"seed", "base_seed"}, "rpl104_clean.py", None),
    ("rpl105_trigger.py", "RPL105", 4,
     {"_node_used", "_link_used"},
     "rpl105_clean.py", {"RPL105": RPL105_OPTIONS}),
    ("rpl106_trigger.py", "RPL106", 3, {"except"}, "rpl106_clean.py", None),
]


class TestRulesFire:
    @pytest.mark.parametrize(
        "trigger,rule_id,count,symbols,clean,options",
        RULE_CASES,
        ids=[case[1] for case in RULE_CASES],
    )
    def test_trigger_and_clean_fixture(
        self, trigger, rule_id, count, symbols, clean, options
    ):
        report = run_fixture(trigger, [rule_id], options)
        assert len(report.findings) == count, render_text(report)
        assert {f.rule_id for f in report.findings} == {rule_id}
        assert symbols <= {f.symbol for f in report.findings}
        # Findings carry real locations inside the fixture.
        assert all(f.line > 1 and f.path.endswith(trigger)
                   for f in report.findings)

        clean_report = run_fixture(clean, [rule_id], options)
        assert clean_report.findings == [], render_text(clean_report)

    def test_rpl107_missing_handler(self):
        config = AnalysisConfig(
            select=["RPL107"], options={"RPL107": RPL107_OPTIONS}
        )
        report = analyze_paths(
            [str(FIXTURES / "rpl107_events_trigger.py")],
            config=config, root=REPO_ROOT,
        )
        assert len(report.findings) == 1
        finding = report.findings[0]
        assert finding.rule_id == "RPL107"
        assert finding.symbol == "EventType.ORPHANED"
        # The finding anchors on the member's declaration line.
        assert finding.path.endswith("rpl107_events_trigger.py")
        assert "ORPHANED" in finding.message

    def test_rpl107_creation_site_does_not_count_as_handler(self):
        # ARRIVAL/DEPARTURE are registered, END is dispatch-compared, and
        # ORPHANED only appears at an Event.create site — so exactly one
        # member is unhandled (asserted above); here we assert the other
        # three are NOT reported.
        config = AnalysisConfig(
            select=["RPL107"], options={"RPL107": RPL107_OPTIONS}
        )
        report = analyze_paths(
            [str(FIXTURES / "rpl107_events_trigger.py")],
            config=config, root=REPO_ROOT,
        )
        reported = {f.symbol for f in report.findings}
        assert "EventType.ARRIVAL" not in reported
        assert "EventType.DEPARTURE" not in reported
        assert "EventType.END" not in reported


class TestSuppressions:
    def test_valid_suppressions_silence_findings(self):
        report = run_fixture("suppressed_ok.py", ["RPL102"])
        assert report.findings == []
        assert report.suppressed == 2  # one trailing, one standalone

    def test_reasonless_suppression_is_a_finding_and_suppresses_nothing(self):
        report = run_fixture("suppressed_bad.py", ["RPL102"])
        rules = sorted(f.rule_id for f in report.findings)
        assert rules == ["RPL002", "RPL102"]
        assert report.suppressed == 0

    def test_suppression_only_matches_listed_rule(self):
        report = analyze_source(
            "import time\n"
            "t = time.time()  # repro-lint: disable=RPL101 — wrong rule id\n",
            rel="wrong_rule.py",
            config=AnalysisConfig(select=["RPL102"]),
        )
        assert [f.rule_id for f in report.findings] == ["RPL102"]
        assert report.suppressed == 0

    def test_multi_rule_suppression(self):
        report = analyze_source(
            "import time, random\n"
            "x = (time.time(), random.random())"
            "  # repro-lint: disable=RPL101, RPL102 — both annotated\n",
            rel="multi.py",
            config=AnalysisConfig(select=["RPL101", "RPL102"]),
        )
        assert report.findings == []
        assert report.suppressed == 2

    def test_syntax_error_reported_as_rpl001(self):
        report = run_fixture("rpl001_syntax_error.py", ["RPL101"])
        assert [f.rule_id for f in report.findings] == ["RPL001"]


class TestScopesAndConfig:
    def test_scope_only_and_skip(self):
        scope = RuleScope(only=("src/*",), skip=("src/vendored/*",))
        assert scope.applies_to("src/repro/core/soa.py")
        assert not scope.applies_to("tests/test_x.py")
        assert not scope.applies_to("src/vendored/thing.py")

    def test_default_config_excludes_fixtures(self):
        config = default_config()
        assert config.excluded("tests/fixtures/analysis/rpl101_trigger.py")
        assert not config.excluded("tests/test_analysis.py")

    def test_default_scope_waives_clock_allowlist(self):
        scope = default_config().scope_for("RPL102")
        assert not scope.applies_to("benchmarks/bench_vecenv.py")
        assert not scope.applies_to("src/repro/core/timeout.py")
        assert not scope.applies_to("src/repro/experiments/cli.py")
        assert scope.applies_to("src/repro/core/soa.py")

    def test_disable_removes_rule(self):
        config = AnalysisConfig(select=["RPL101", "RPL102"], disable=["RPL102"])
        assert config.enabled_rules(["RPL101", "RPL102"]) == ["RPL101"]


class TestReporters:
    def test_json_payload_schema_and_determinism(self):
        config = AnalysisConfig(select=["RPL101"])
        report = analyze_paths(
            [str(FIXTURES / "rpl101_trigger.py")], config=config, root=REPO_ROOT
        )
        payload = json.loads(render_json(report))
        assert set(payload) == {
            "schema_version", "tool", "rules_enabled", "paths_scanned",
            "findings", "summary",
        }
        assert payload["schema_version"] == 1
        assert payload["tool"] == "reprolint"
        assert payload["summary"]["clean"] is False
        assert payload["summary"]["findings"] == len(payload["findings"])
        for entry in payload["findings"]:
            assert set(entry) == {
                "rule", "path", "line", "col", "message", "symbol"
            }
            # Committed artifact stays machine-portable: relative paths only.
            assert not entry["path"].startswith("/")
        # Byte-identical across runs (no timestamps, stable ordering).
        second = analyze_paths(
            [str(FIXTURES / "rpl101_trigger.py")], config=config, root=REPO_ROOT
        )
        assert render_json(report) == render_json(second)

    def test_text_report_mentions_every_finding(self):
        report = run_fixture("rpl106_trigger.py", ["RPL106"])
        text = render_text(report)
        assert text.count("RPL106") == len(report.findings)
        assert "finding" in text.splitlines()[-1]


class TestCli:
    def test_list_rules(self, capsys):
        assert cli_main(["--list-rules"]) == 0
        out = capsys.readouterr().out
        for rule_id in ["RPL001", "RPL002", "RPL101", "RPL102", "RPL103",
                        "RPL104", "RPL105", "RPL106", "RPL107"]:
            assert rule_id in out

    def test_unknown_rule_is_usage_error(self, capsys):
        assert cli_main(["--select", "RPL999", str(FIXTURES)]) == 2

    def test_missing_path_is_usage_error(self):
        assert cli_main(["no/such/path", "--root", str(REPO_ROOT)]) == 2

    def test_findings_exit_1_and_output_file(self, tmp_path, capsys):
        # The default config excludes tests/fixtures (even when named
        # explicitly), so drive the CLI on a copy outside that tree.
        target = tmp_path / "module.py"
        target.write_text((FIXTURES / "rpl101_trigger.py").read_text())
        out_file = tmp_path / "lint.json"
        code = cli_main([
            "module.py",
            "--root", str(tmp_path),
            "--select", "RPL101",
            "--output", str(out_file),
        ])
        assert code == 1
        payload = json.loads(out_file.read_text())
        assert payload["summary"]["findings"] == 4
        assert "RPL101" in capsys.readouterr().out

    def test_default_config_excludes_fixtures_even_when_named(self, capsys):
        code = cli_main([
            "tests/fixtures/analysis/rpl101_trigger.py",
            "--root", str(REPO_ROOT),
            "--select", "RPL101",
        ])
        assert code == 0
        assert "0 files" in capsys.readouterr().out

    def test_clean_exit_0_json_stdout(self, tmp_path, capsys):
        target = tmp_path / "module.py"
        target.write_text((FIXTURES / "rpl101_clean.py").read_text())
        code = cli_main([
            "module.py",
            "--root", str(tmp_path),
            "--select", "RPL101",
            "--format", "json",
        ])
        assert code == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["summary"]["clean"] is True
        assert payload["paths_scanned"] == 1


class TestRepoClean:
    """The tree itself must pass with every rule enabled."""

    def test_repo_is_clean_under_full_default_config(self):
        report = analyze_paths(
            ["src", "benchmarks", "tests"], root=REPO_ROOT
        )
        assert report.findings == [], render_text(report)
        # Sanity: this really scanned the tree with the full catalog.
        assert report.files_scanned > 100
        assert report.rules_enabled == sorted(all_rules())
        # The committed suppressions (soa.py profiling timers, subproc
        # cleanup catches) are in effect, not silently ignored.
        assert report.suppressed >= 10

    def test_real_event_enum_is_exhaustively_handled(self):
        config = default_config()
        config.select = ["RPL107"]
        report = analyze_paths(["src/repro/sim"], config=config, root=REPO_ROOT)
        assert report.findings == [], render_text(report)

    def test_rpl107_catches_member_added_without_handler(self):
        # Regression guard for the cross-module visitor itself: extend the
        # real enum source with a fresh member and re-run the real rule
        # configuration against the patched copy.
        config = default_config()
        events_rel = config.options["RPL107"]["events_module"]
        original = (REPO_ROOT / events_rel).read_text()
        patched = original.replace(
            'END_OF_SIMULATION = "end_of_simulation"',
            'END_OF_SIMULATION = "end_of_simulation"\n'
            '    TOTALLY_NEW = "totally_new"',
        )
        assert patched != original
        from repro.analysis.module import SourceModule
        from repro.analysis.engine import analyze_modules

        modules = [SourceModule.from_source(patched, rel=events_rel)]
        config.select = ["RPL107"]
        report = analyze_modules(modules, config, REPO_ROOT)
        assert [f.symbol for f in report.findings] == ["EventType.TOTALLY_NEW"]
