"""reprolint: fixture-driven rule tests plus the repo-clean gate.

Every RPLxxx rule gets at least one triggering fixture (the rule fires, at
the expected sites) and one clean fixture (the conforming idiom passes).
The integration test at the bottom runs the full analyzer — default
committed configuration, every rule enabled — over ``src``, ``benchmarks``
and ``tests`` and asserts zero findings: the tree itself is the ultimate
clean fixture, and any future contract violation fails tier-1 here.
"""

from __future__ import annotations

import json
from pathlib import Path

import pytest

from repro.analysis import (
    AnalysisConfig,
    FRAMEWORK_RULES,
    RuleScope,
    all_rules,
    analyze_paths,
    analyze_source,
    default_config,
    render_github,
    render_json,
    render_text,
)
from repro.analysis.cli import main as cli_main

REPO_ROOT = Path(__file__).resolve().parent.parent
FIXTURES = REPO_ROOT / "tests" / "fixtures" / "analysis"

#: Options mirroring the real RPL105/RPL107 configuration, retargeted at
#: the fixture modules.
RPL105_OPTIONS = {
    "pairs": {"_node_used": "_node_used_py", "_link_used": "_link_used_py"},
    "resync_methods": ["_release_record"],
}
RPL107_OPTIONS = {
    "events_module": "tests/fixtures/analysis/rpl107_events_trigger.py",
    "enum_name": "EventType",
    "handler_modules": ["tests/fixtures/analysis/rpl107_handlers.py"],
    "register_methods": ["on"],
}
#: The staleness pair/reader/resync vocabulary of the RPL204 fixtures.
RPL204_OPTIONS = {
    "pairs": {"_used": "_used_py"},
    "shadow_readers": ["_replay"],
    "resync_methods": ["_resync_all"],
}


def run_fixture(name, select, options=None):
    config = AnalysisConfig(select=list(select), options=options or {})
    return analyze_paths(
        [str(FIXTURES / name)], config=config, root=REPO_ROOT
    )


class TestRuleCatalog:
    def test_full_rule_catalog_registered(self):
        # RPL1xx: syntactic contract rules; RPL2xx: flow/protocol rules.
        assert sorted(all_rules()) == [
            "RPL101", "RPL102", "RPL103", "RPL104",
            "RPL105", "RPL106", "RPL107",
            "RPL201", "RPL202", "RPL203", "RPL204",
        ]

    def test_framework_rules_reserved(self):
        assert set(FRAMEWORK_RULES) == {"RPL001", "RPL002"}


# Each entry: (trigger fixture, rule id, expected finding count,
#              expected symbols subset, clean fixture, options)
RULE_CASES = [
    ("rpl101_trigger.py", "RPL101", 4,
     {"numpy.random.rand", "random.random", "numpy.random.default_rng",
      "random.Random"},
     "rpl101_clean.py", None),
    ("rpl102_trigger.py", "RPL102", 4,
     {"time.time", "time.perf_counter", "datetime.datetime.now"},
     "rpl102_clean.py", None),
    ("rpl103_trigger.py", "RPL103", 4, {"id"}, "rpl103_clean.py", None),
    ("rpl104_trigger.py", "RPL104", 3,
     {"seed", "base_seed"}, "rpl104_clean.py", None),
    ("rpl105_trigger.py", "RPL105", 4,
     {"_node_used", "_link_used"},
     "rpl105_clean.py", {"RPL105": RPL105_OPTIONS}),
    ("rpl106_trigger.py", "RPL106", 3, {"except"}, "rpl106_clean.py", None),
    ("rpl201_trigger.py", "RPL201", 5,
     {"states", "pair", "via_alias", "stash", "whole_mapping"},
     "rpl201_clean.py", None),
    ("rpl203_trigger.py", "RPL203", 7,
     {"clobber_masks", "fill_via_alias", "ufunc_targets", "anchor_typo",
      "bump_request"},
     "rpl203_clean.py", None),
    ("rpl204_trigger.py", "RPL204", 4, {"_used"},
     "rpl204_clean.py", {"RPL204": RPL204_OPTIONS}),
]


class TestRulesFire:
    @pytest.mark.parametrize(
        "trigger,rule_id,count,symbols,clean,options",
        RULE_CASES,
        ids=[case[1] for case in RULE_CASES],
    )
    def test_trigger_and_clean_fixture(
        self, trigger, rule_id, count, symbols, clean, options
    ):
        report = run_fixture(trigger, [rule_id], options)
        assert len(report.findings) == count, render_text(report)
        assert {f.rule_id for f in report.findings} == {rule_id}
        assert symbols <= {f.symbol for f in report.findings}
        # Findings carry real locations inside the fixture.
        assert all(f.line > 1 and f.path.endswith(trigger)
                   for f in report.findings)

        clean_report = run_fixture(clean, [rule_id], options)
        assert clean_report.findings == [], render_text(clean_report)

    def test_rpl107_missing_handler(self):
        config = AnalysisConfig(
            select=["RPL107"], options={"RPL107": RPL107_OPTIONS}
        )
        report = analyze_paths(
            [str(FIXTURES / "rpl107_events_trigger.py")],
            config=config, root=REPO_ROOT,
        )
        assert len(report.findings) == 1
        finding = report.findings[0]
        assert finding.rule_id == "RPL107"
        assert finding.symbol == "EventType.ORPHANED"
        # The finding anchors on the member's declaration line.
        assert finding.path.endswith("rpl107_events_trigger.py")
        assert "ORPHANED" in finding.message

    def test_rpl107_creation_site_does_not_count_as_handler(self):
        # ARRIVAL/DEPARTURE are registered, END is dispatch-compared, and
        # ORPHANED only appears at an Event.create site — so exactly one
        # member is unhandled (asserted above); here we assert the other
        # three are NOT reported.
        config = AnalysisConfig(
            select=["RPL107"], options={"RPL107": RPL107_OPTIONS}
        )
        report = analyze_paths(
            [str(FIXTURES / "rpl107_events_trigger.py")],
            config=config, root=REPO_ROOT,
        )
        reported = {f.symbol for f in report.findings}
        assert "EventType.ARRIVAL" not in reported
        assert "EventType.DEPARTURE" not in reported
        assert "EventType.END" not in reported


class TestCommandProtocol:
    """RPL202 lock-in: patch the real subproc source, assert the drift fires.

    Mirrors the RPL107 lock-in test: the rule is exercised against the real
    module text so these tests prove non-vacuity — an unhandled command, a
    dead dispatch branch, an unexamined reply and a phantom examined reply
    each produce exactly the expected finding.
    """

    def _run(self, source):
        from repro.analysis.engine import analyze_modules
        from repro.analysis.module import SourceModule

        config = default_config()
        rel = config.options["RPL202"]["module"]
        config.select = ["RPL202"]
        modules = [SourceModule.from_source(source, rel=rel)]
        return analyze_modules(modules, config, REPO_ROOT), rel

    def _real_source(self):
        rel = default_config().options["RPL202"]["module"]
        return (REPO_ROOT / rel).read_text()

    def test_real_protocol_is_exhaustive_both_directions(self):
        report, _ = self._run(self._real_source())
        assert report.findings == [], render_text(report)

    def test_catches_command_sent_without_worker_dispatch(self):
        original = self._real_source()
        patched = original.replace(
            'supported = self._command_all("context")',
            'supported = self._command_all("context") '
            '+ self._command_all("flush")',
        )
        assert patched != original
        report, rel = self._run(patched)
        assert [f.symbol for f in report.findings] == ["flush"]
        finding = report.findings[0]
        assert finding.path == rel
        assert "no dispatch branch" in finding.message

    def test_catches_dead_dispatch_and_unexamined_reply(self):
        # One patch, two drifts: the worker grows a branch no parent sends
        # ("ghost") whose reply tag the parent never examines ("weird").
        original = self._real_source()
        patched = original.replace(
            '                elif command == "policy_reset":',
            '                elif command == "ghost":\n'
            '                    conn.send(("weird", None))\n'
            '                elif command == "policy_reset":',
        )
        assert patched != original
        report, _ = self._run(patched)
        by_symbol = {f.symbol: f for f in report.findings}
        assert set(by_symbol) == {"ghost", "weird"}
        assert "no parent call site ever sends" in by_symbol["ghost"].message
        assert "parent never examines" in by_symbol["weird"].message

    def test_catches_examined_reply_worker_never_sends(self):
        original = self._real_source()
        patched = original.replace(
            'if tag != "ok":',
            'if tag == "phantom" or tag != "ok":',
        )
        assert patched != original
        report, _ = self._run(patched)
        assert [f.symbol for f in report.findings] == ["phantom"]
        assert "worker never sends it" in report.findings[0].message


class TestSuppressions:
    def test_valid_suppressions_silence_findings(self):
        report = run_fixture("suppressed_ok.py", ["RPL102"])
        assert report.findings == []
        assert report.suppressed == 2  # one trailing, one standalone

    def test_reasonless_suppression_is_a_finding_and_suppresses_nothing(self):
        report = run_fixture("suppressed_bad.py", ["RPL102"])
        rules = sorted(f.rule_id for f in report.findings)
        assert rules == ["RPL002", "RPL102"]
        assert report.suppressed == 0

    def test_suppression_only_matches_listed_rule(self):
        report = analyze_source(
            "import time\n"
            "t = time.time()  # repro-lint: disable=RPL101 — wrong rule id\n",
            rel="wrong_rule.py",
            config=AnalysisConfig(select=["RPL102"]),
        )
        assert [f.rule_id for f in report.findings] == ["RPL102"]
        assert report.suppressed == 0

    def test_multi_rule_suppression(self):
        report = analyze_source(
            "import time, random\n"
            "x = (time.time(), random.random())"
            "  # repro-lint: disable=RPL101, RPL102 — both annotated\n",
            rel="multi.py",
            config=AnalysisConfig(select=["RPL101", "RPL102"]),
        )
        assert report.findings == []
        assert report.suppressed == 2

    def test_syntax_error_reported_as_rpl001(self):
        report = run_fixture("rpl001_syntax_error.py", ["RPL101"])
        assert [f.rule_id for f in report.findings] == ["RPL001"]


class TestScopesAndConfig:
    def test_scope_only_and_skip(self):
        scope = RuleScope(only=("src/*",), skip=("src/vendored/*",))
        assert scope.applies_to("src/repro/core/soa.py")
        assert not scope.applies_to("tests/test_x.py")
        assert not scope.applies_to("src/vendored/thing.py")

    def test_default_config_excludes_fixtures(self):
        config = default_config()
        assert config.excluded("tests/fixtures/analysis/rpl101_trigger.py")
        assert not config.excluded("tests/test_analysis.py")

    def test_default_scope_waives_clock_allowlist(self):
        scope = default_config().scope_for("RPL102")
        assert not scope.applies_to("benchmarks/bench_vecenv.py")
        assert not scope.applies_to("src/repro/core/timeout.py")
        assert not scope.applies_to("src/repro/experiments/cli.py")
        assert scope.applies_to("src/repro/core/soa.py")

    def test_disable_removes_rule(self):
        config = AnalysisConfig(select=["RPL101", "RPL102"], disable=["RPL102"])
        assert config.enabled_rules(["RPL101", "RPL102"]) == ["RPL101"]


class TestReporters:
    def test_json_payload_schema_and_determinism(self):
        config = AnalysisConfig(select=["RPL101"])
        report = analyze_paths(
            [str(FIXTURES / "rpl101_trigger.py")], config=config, root=REPO_ROOT
        )
        payload = json.loads(render_json(report))
        assert set(payload) == {
            "schema_version", "tool", "rules_enabled", "paths_scanned",
            "findings", "summary",
        }
        assert payload["schema_version"] == 2
        assert payload["tool"] == "reprolint"
        summary = payload["summary"]
        assert set(summary) == {
            "files", "findings", "suppressed", "clean", "by_rule", "cache"
        }
        assert summary["clean"] is False
        assert summary["findings"] == len(payload["findings"])
        # v2: per-rule counts cover every enabled rule (zeros included) and
        # the cache block records whether the incremental cache was active.
        assert summary["by_rule"] == {"RPL101": 4}
        assert summary["cache"] == {"enabled": False, "files": 1}
        for entry in payload["findings"]:
            assert set(entry) == {
                "rule", "path", "line", "col", "message", "symbol"
            }
            # Committed artifact stays machine-portable: relative paths only.
            assert not entry["path"].startswith("/")
        # Byte-identical across runs (no timestamps, stable ordering).
        second = analyze_paths(
            [str(FIXTURES / "rpl101_trigger.py")], config=config, root=REPO_ROOT
        )
        assert render_json(report) == render_json(second)

    def test_text_report_mentions_every_finding(self):
        report = run_fixture("rpl106_trigger.py", ["RPL106"])
        text = render_text(report)
        assert text.count("RPL106") == len(report.findings)
        assert "finding" in text.splitlines()[-1]

    def test_by_rule_reports_zero_for_silent_rules(self):
        report = run_fixture("rpl101_trigger.py", ["RPL101", "RPL102"])
        payload = json.loads(render_json(report))
        assert payload["summary"]["by_rule"] == {"RPL101": 4, "RPL102": 0}

    def test_github_format_emits_error_annotations(self):
        report = run_fixture("rpl101_trigger.py", ["RPL101"])
        out = render_github(report)
        lines = out.splitlines()
        annotations = [line for line in lines if line.startswith("::error ")]
        assert len(annotations) == len(report.findings) == 4
        first = report.findings[0]
        assert annotations[0].startswith(
            f"::error file={first.path},line={first.line},col={first.col},"
            f"title=reprolint RPL101::"
        )
        assert annotations[0].endswith(first.message)
        # The human summary line still closes the output.
        assert "finding" in lines[-1]

    def test_github_format_escapes_workflow_command_characters(self):
        from repro.analysis.findings import Finding, Report

        finding = Finding(
            rule_id="RPL101",
            path="pkg/weird,file.py",
            line=3,
            col=1,
            message="bad % and\nmultiline",
        )
        report = Report(
            findings=[finding], files_scanned=1, rules_enabled=["RPL101"]
        )
        out = render_github(report).splitlines()[0]
        # Property values escape %, newlines and commas; the message data
        # escapes % and newlines so the annotation stays one line.
        assert "file=pkg/weird%2Cfile.py" in out
        assert "bad %25 and%0Amultiline" in out
        assert "\n" not in out


class TestCli:
    def test_list_rules(self, capsys):
        assert cli_main(["--list-rules"]) == 0
        out = capsys.readouterr().out
        for rule_id in ["RPL001", "RPL002", "RPL101", "RPL102", "RPL103",
                        "RPL104", "RPL105", "RPL106", "RPL107",
                        "RPL201", "RPL202", "RPL203", "RPL204"]:
            assert rule_id in out

    def test_unknown_rule_is_usage_error(self, capsys):
        assert cli_main(["--select", "RPL999", str(FIXTURES)]) == 2

    def test_missing_path_is_usage_error(self):
        assert cli_main(["no/such/path", "--root", str(REPO_ROOT)]) == 2

    def test_findings_exit_1_and_output_file(self, tmp_path, capsys):
        # The default config excludes tests/fixtures (even when named
        # explicitly), so drive the CLI on a copy outside that tree.
        target = tmp_path / "module.py"
        target.write_text((FIXTURES / "rpl101_trigger.py").read_text())
        out_file = tmp_path / "lint.json"
        code = cli_main([
            "module.py",
            "--root", str(tmp_path),
            "--select", "RPL101",
            "--output", str(out_file),
        ])
        assert code == 1
        payload = json.loads(out_file.read_text())
        assert payload["summary"]["findings"] == 4
        assert "RPL101" in capsys.readouterr().out

    def test_default_config_excludes_fixtures_even_when_named(self, capsys):
        code = cli_main([
            "tests/fixtures/analysis/rpl101_trigger.py",
            "--root", str(REPO_ROOT),
            "--select", "RPL101",
        ])
        assert code == 0
        assert "0 files" in capsys.readouterr().out

    def test_clean_exit_0_json_stdout(self, tmp_path, capsys):
        target = tmp_path / "module.py"
        target.write_text((FIXTURES / "rpl101_clean.py").read_text())
        code = cli_main([
            "module.py",
            "--root", str(tmp_path),
            "--select", "RPL101",
            "--format", "json",
        ])
        assert code == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["summary"]["clean"] is True
        assert payload["paths_scanned"] == 1


class TestCache:
    """Incremental cache: warm runs replay, never change observable output."""

    def _scan(self, tmp_path, cache_file, select=("RPL101",)):
        config = AnalysisConfig(select=list(select))
        return analyze_paths(
            ["module.py"], config=config, root=tmp_path, cache_file=cache_file
        )

    def test_cold_and_warm_runs_byte_identical(self, tmp_path):
        (tmp_path / "module.py").write_text(
            (FIXTURES / "rpl101_trigger.py").read_text()
        )
        cache_file = tmp_path / "cache.json"
        cold = self._scan(tmp_path, cache_file)
        assert cold.cache_stats.file_misses == 1
        assert cold.cache_stats.file_hits == 0
        warm = self._scan(tmp_path, cache_file)
        assert warm.cache_stats.file_hits == 1
        assert warm.cache_stats.file_misses == 0
        # The acceptance bar: both renderings byte-identical to the cold run.
        assert render_text(warm) == render_text(cold)
        assert render_json(warm) == render_json(cold)
        # And the cached run matches an uncached one finding-for-finding.
        uncached = analyze_paths(
            ["module.py"],
            config=AnalysisConfig(select=["RPL101"]),
            root=tmp_path,
        )
        assert [f.to_dict() for f in uncached.findings] == [
            f.to_dict() for f in cold.findings
        ]

    def test_content_change_invalidates_entry(self, tmp_path):
        target = tmp_path / "module.py"
        target.write_text("import time\n")
        cache_file = tmp_path / "cache.json"
        first = self._scan(tmp_path, cache_file, select=("RPL102",))
        assert first.findings == []
        target.write_text("import time\nt = time.time()\n")
        second = self._scan(tmp_path, cache_file, select=("RPL102",))
        assert second.cache_stats.file_misses == 1
        assert [f.rule_id for f in second.findings] == ["RPL102"]
        # Unchanged content afterwards hits again.
        third = self._scan(tmp_path, cache_file, select=("RPL102",))
        assert third.cache_stats.file_hits == 1
        assert render_json(third) == render_json(second)

    def test_config_change_invalidates_whole_cache(self, tmp_path):
        target = tmp_path / "module.py"
        target.write_text("import time\nt = time.time()\n")
        cache_file = tmp_path / "cache.json"
        self._scan(tmp_path, cache_file, select=("RPL102",))
        # A different rule selection must not replay stale entries.
        other = self._scan(tmp_path, cache_file, select=("RPL101", "RPL102"))
        assert other.cache_stats.file_misses == 1

    def test_suppressions_replay_from_cache(self, tmp_path):
        (tmp_path / "module.py").write_text(
            (FIXTURES / "suppressed_ok.py").read_text()
        )
        cache_file = tmp_path / "cache.json"
        cold = self._scan(tmp_path, cache_file, select=("RPL102",))
        warm = self._scan(tmp_path, cache_file, select=("RPL102",))
        assert warm.cache_stats.file_hits == 1
        assert cold.suppressed == warm.suppressed == 2
        assert cold.findings == warm.findings == []

    def test_project_rule_scope_cached(self, tmp_path):
        config = default_config()
        config.select = ["RPL202"]
        cache_file = tmp_path / "cache.json"
        rel = config.options["RPL202"]["module"]
        cold = analyze_paths(
            [rel], config=config, root=REPO_ROOT, cache_file=cache_file
        )
        assert cold.cache_stats.project_misses == 1
        warm = analyze_paths(
            [rel], config=config, root=REPO_ROOT, cache_file=cache_file
        )
        assert warm.cache_stats.project_hits == 1
        assert render_json(warm) == render_json(cold)


class TestRepoClean:
    """The tree itself must pass with every rule enabled."""

    def test_repo_is_clean_under_full_default_config(self):
        report = analyze_paths(
            ["src", "benchmarks", "tests"], root=REPO_ROOT
        )
        assert report.findings == [], render_text(report)
        # Sanity: this really scanned the tree with the full catalog.
        assert report.files_scanned > 100
        assert report.rules_enabled == sorted(all_rules())
        # The committed suppressions (soa.py profiling timers, subproc
        # cleanup catches) are in effect, not silently ignored.
        assert report.suppressed >= 10

    def test_real_event_enum_is_exhaustively_handled(self):
        config = default_config()
        config.select = ["RPL107"]
        report = analyze_paths(["src/repro/sim"], config=config, root=REPO_ROOT)
        assert report.findings == [], render_text(report)

    def test_rpl107_catches_member_added_without_handler(self):
        # Regression guard for the cross-module visitor itself: extend the
        # real enum source with a fresh member and re-run the real rule
        # configuration against the patched copy.
        config = default_config()
        events_rel = config.options["RPL107"]["events_module"]
        original = (REPO_ROOT / events_rel).read_text()
        patched = original.replace(
            'END_OF_SIMULATION = "end_of_simulation"',
            'END_OF_SIMULATION = "end_of_simulation"\n'
            '    TOTALLY_NEW = "totally_new"',
        )
        assert patched != original
        from repro.analysis.module import SourceModule
        from repro.analysis.engine import analyze_modules

        modules = [SourceModule.from_source(patched, rel=events_rel)]
        config.select = ["RPL107"]
        report = analyze_modules(modules, config, REPO_ROOT)
        assert [f.symbol for f in report.findings] == ["EventType.TOTALLY_NEW"]
