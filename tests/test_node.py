"""Unit tests for compute nodes."""

import pytest

from repro.substrate.geo import GeoPoint
from repro.substrate.node import (
    ComputeNode,
    InsufficientCapacityError,
    NodeTier,
    UnknownAllocationError,
    make_cloud_node,
    make_edge_node,
)
from repro.substrate.resources import ResourceVector


@pytest.fixture
def node():
    return ComputeNode(
        node_id=1,
        location=GeoPoint(40.0, -74.0),
        capacity=ResourceVector(8.0, 16.0, 100.0),
        tier=NodeTier.EDGE,
    )


class TestConstruction:
    def test_edge_factory(self):
        edge = make_edge_node(3, GeoPoint(40.0, -74.0))
        assert edge.is_edge and not edge.is_cloud
        assert edge.name == "edge-3"

    def test_cloud_factory_has_larger_capacity(self):
        edge = make_edge_node(0, GeoPoint(40.0, -74.0))
        cloud = make_cloud_node(1, GeoPoint(39.0, -104.0))
        assert cloud.capacity.cpu > edge.capacity.cpu
        assert cloud.is_cloud

    def test_cloud_cheaper_per_unit_than_edge(self):
        edge = make_edge_node(0, GeoPoint(40.0, -74.0))
        cloud = make_cloud_node(1, GeoPoint(39.0, -104.0))
        assert cloud.cost_per_unit.cpu < edge.cost_per_unit.cpu

    def test_negative_activation_cost_rejected(self):
        with pytest.raises(ValueError):
            ComputeNode(
                node_id=0,
                location=GeoPoint(0, 0),
                capacity=ResourceVector(1, 1, 1),
                activation_cost=-1.0,
            )


class TestAllocation:
    def test_allocate_updates_usage(self, node):
        node.allocate("a", ResourceVector(2, 4, 10))
        assert node.used.as_tuple() == (2.0, 4.0, 10.0)
        assert node.available.as_tuple() == (6.0, 12.0, 90.0)
        assert node.is_active
        assert node.allocation_count == 1

    def test_allocate_rejects_over_capacity(self, node):
        with pytest.raises(InsufficientCapacityError):
            node.allocate("big", ResourceVector(9, 1, 1))
        assert not node.is_active

    def test_allocate_duplicate_handle_rejected(self, node):
        node.allocate("a", ResourceVector(1, 1, 1))
        with pytest.raises(ValueError, match="already exists"):
            node.allocate("a", ResourceVector(1, 1, 1))

    def test_release_returns_demand(self, node):
        demand = ResourceVector(2, 2, 2)
        node.allocate("a", demand)
        assert node.release("a") == demand
        assert node.used.is_zero()
        assert not node.is_active

    def test_release_unknown_handle(self, node):
        with pytest.raises(UnknownAllocationError):
            node.release("missing")

    def test_can_host_respects_current_usage(self, node):
        node.allocate("a", ResourceVector(6, 1, 1))
        assert not node.can_host(ResourceVector(3, 1, 1))
        assert node.can_host(ResourceVector(2, 1, 1))

    def test_multiple_allocations_accumulate(self, node):
        node.allocate("a", ResourceVector(2, 2, 2))
        node.allocate("b", ResourceVector(3, 3, 3))
        assert node.used.as_tuple() == (5.0, 5.0, 5.0)
        node.release("a")
        assert node.used.as_tuple() == (3.0, 3.0, 3.0)

    def test_reset_clears_everything(self, node):
        node.allocate("a", ResourceVector(2, 2, 2))
        node.reset()
        assert node.used.is_zero()
        assert node.peak_used.is_zero()
        assert not node.holds("a")

    def test_peak_usage_tracks_high_water_mark(self, node):
        node.allocate("a", ResourceVector(4, 4, 4))
        node.release("a")
        node.allocate("b", ResourceVector(1, 1, 1))
        assert node.peak_used.as_tuple() == (4.0, 4.0, 4.0)

    def test_allocation_exactly_filling_capacity(self, node):
        node.allocate("full", ResourceVector(8, 16, 100))
        assert node.max_utilization() == pytest.approx(1.0)
        assert not node.can_host(ResourceVector(0.1, 0, 0))


class TestUtilizationAndCost:
    def test_utilization_ratios(self, node):
        node.allocate("a", ResourceVector(4, 4, 10))
        utilization = node.utilization()
        assert utilization["cpu"] == pytest.approx(0.5)
        assert utilization["memory"] == pytest.approx(0.25)
        assert node.max_utilization() == pytest.approx(0.5)
        assert node.mean_utilization() == pytest.approx((0.5 + 0.25 + 0.1) / 3)

    def test_hosting_cost_scales_with_duration(self, node):
        demand = ResourceVector(2, 2, 2)
        assert node.hosting_cost(demand, 10.0) == pytest.approx(
            2 * node.hosting_cost(demand, 5.0)
        )

    def test_hosting_cost_negative_duration_rejected(self, node):
        with pytest.raises(ValueError):
            node.hosting_cost(ResourceVector(1, 1, 1), -1.0)

    def test_usage_cost_rate_includes_activation(self):
        node = ComputeNode(
            node_id=0,
            location=GeoPoint(0, 0),
            capacity=ResourceVector(10, 10, 10),
            activation_cost=5.0,
        )
        assert node.usage_cost_rate() == 0.0
        node.allocate("a", ResourceVector(1, 1, 1))
        assert node.usage_cost_rate() > 5.0

    def test_snapshot_contains_key_fields(self, node):
        node.allocate("a", ResourceVector(1, 1, 1))
        snapshot = node.snapshot()
        assert snapshot["node_id"] == 1
        assert snapshot["tier"] == "edge"
        assert snapshot["allocations"] == 1
        assert 0 < snapshot["max_utilization"] < 1
