"""End-to-end integration tests across the whole stack.

These tests exercise the same pipeline as the examples: build a scenario,
train a controller, deploy it in the online simulator, and compare against
baselines.  They use tiny settings so the whole file stays under a minute.
"""

import numpy as np
import pytest

from repro import (
    DQNConfig,
    EnvConfig,
    ManagerConfig,
    TrainingConfig,
    VNFManager,
    reference_scenario,
    standard_baselines,
)
from repro.experiments.runner import evaluate_policies
from repro.sim.simulation import SimulationConfig


@pytest.fixture(scope="module")
def trained_manager():
    scenario = reference_scenario(arrival_rate=0.8, num_edge_nodes=6, horizon=120.0, seed=3)
    config = ManagerConfig(
        training=TrainingConfig(num_episodes=12, evaluation_interval=6, evaluation_episodes=1),
        env=EnvConfig(requests_per_episode=15),
        dqn=DQNConfig(
            hidden_layers=(32, 32),
            min_replay_size=64,
            batch_size=32,
            epsilon_decay_steps=1500,
        ),
    )
    manager = VNFManager(scenario, config=config, seed=1)
    manager.train()
    return manager


class TestEndToEndPipeline:
    def test_training_improves_reward(self, trained_manager):
        rewards = trained_manager.trainer.history.episode_rewards
        first = np.mean(rewards[:3])
        last = np.mean(rewards[-3:])
        assert last > first

    def test_online_evaluation_reasonable(self, trained_manager):
        result = trained_manager.evaluate_online()
        summary = result.summary
        assert summary.total_requests > 10
        assert summary.acceptance_ratio > 0.3
        # Every accepted request satisfied its SLA (admission-controlled).
        assert summary.sla_violation_ratio == pytest.approx(0.0)
        assert summary.total_revenue > 0

    def test_drl_beats_naive_packers(self, trained_manager):
        """The learned policy should beat the load-oblivious bin packers."""
        scenario = trained_manager.scenario
        requests = scenario.generate_requests()
        config = SimulationConfig(horizon=scenario.workload_config.horizon)

        from repro.sim.simulation import NFVSimulation
        from repro.baselines import FirstFitPolicy

        drl_network = scenario.build_network()
        drl_result = NFVSimulation(drl_network, trained_manager.build_policy(drl_network), config).run(requests)

        ff_network = scenario.build_network()
        ff_result = NFVSimulation(ff_network, FirstFitPolicy(), config).run(requests)

        assert drl_result.summary.acceptance_ratio >= ff_result.summary.acceptance_ratio

    def test_all_baselines_run_on_reference_scenario(self):
        scenario = reference_scenario(arrival_rate=0.6, num_edge_nodes=6, horizon=60.0, seed=5)
        results = evaluate_policies(scenario, standard_baselines(seed=0))
        assert len(results) == len(standard_baselines(seed=0))
        for result in results:
            assert result.summary.total_requests > 0
            # Accepted + rejected must cover every request.
            assert (
                result.summary.accepted_requests + result.summary.rejected_requests
                == result.summary.total_requests
            )

    def test_checkpoint_round_trip_preserves_policy(self, trained_manager, tmp_path):
        path = trained_manager.save_agent(tmp_path / "agent.npz")
        scenario = trained_manager.scenario
        clone = VNFManager(scenario, seed=9)
        clone.load_agent(path)
        state = np.zeros(clone.env.state_dim)
        assert np.allclose(
            clone.agent.q_values(state), trained_manager.agent.q_values(state)
        )

    def test_substrate_returns_to_empty_after_online_run(self, trained_manager):
        scenario = trained_manager.scenario
        network = scenario.build_network()
        from repro.sim.simulation import NFVSimulation

        policy = trained_manager.build_policy(network)
        requests = scenario.generate_requests(horizon=60.0)
        NFVSimulation(network, policy, SimulationConfig(horizon=60.0)).run(requests)
        assert network.total_used().is_zero()
        assert all(link.used_bandwidth == pytest.approx(0.0) for link in network.links())
