"""Differential-equivalence harness for vectorized environment backends.

The SoA core (:class:`~repro.core.soa.SoAVecPlacementEnv`) promises **bitwise
equality** with the per-lane reference backend
(:class:`~repro.core.vecenv.VecPlacementEnv`): same states, masks, rewards,
dones, infos, :class:`~repro.core.env.EpisodeStats` and fenced-node sets for
the same seeds and actions.  This module is the contract's enforcement
machinery, shared by ``tests/test_soa_equivalence.py`` and usable by any
future backend:

* :func:`campaign_from_seed` — derive a randomized :class:`Campaign`
  (scenario shape, workload intensity, fault injection) from one integer,
* :func:`drive` — run one backend through a campaign with seeded
  masked-random actions, recording the full trajectory (optionally through
  the lean-step protocol: ``observe=False`` / ``info=False``),
* :func:`assert_trajectories_equal` — compare two recordings bitwise,
* :func:`assert_lean_matches_full` — compare a lean-step recording against a
  full-step recording of the same campaign (outcome codes, request flags and
  finished stats against the info dicts they replace).

Every drive records the lean-accessor arrays (outcome codes, request-done
flags, request ids, finished-episode stats) regardless of protocol, so
backend comparisons cover them even when info dicts are also compared.

The only sanctioned difference between backends is ``request_id``: the global
request counter is process-local, so worker-sharded backends label requests
per worker.  Cross-process comparisons pass
``ignore_info_keys=PROCESS_LOCAL_INFO_KEYS``; in-process comparisons compare
it too (after :func:`~repro.nfv.sfc.reset_request_counter`, which
:func:`drive` calls before construction so both backends count from zero).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, Optional, Tuple

import numpy as np

from repro.core.env import EnvConfig
from repro.core.vecenv import OUTCOME_CODE
from repro.nfv.sfc import reset_request_counter
from repro.sim.failures import FailureConfig
from repro.workloads.scenarios import Scenario, reference_scenario

#: Info keys that are process-local labels rather than trajectory content.
#: Worker-sharded backends rebuild lanes in separate processes, each with its
#: own global request counter, so ``request_id`` differs across process
#: topologies while every other field stays bitwise identical.
PROCESS_LOCAL_INFO_KEYS: Tuple[str, ...] = ("request_id",)


@dataclass(frozen=True)
class Campaign:
    """One randomized differential scenario/workload/fault configuration."""

    seed: int
    num_lanes: int
    steps: int
    num_edge_nodes: int
    arrival_rate: float
    horizon: float
    requests_per_episode: int
    failure_config: Optional[FailureConfig]

    def scenario(self) -> Scenario:
        """The shared scenario both backends are built from."""
        return reference_scenario(
            arrival_rate=self.arrival_rate,
            num_edge_nodes=self.num_edge_nodes,
            horizon=self.horizon,
            seed=self.seed,
        )

    def env_config(self) -> EnvConfig:
        """The shared environment configuration."""
        return EnvConfig(requests_per_episode=self.requests_per_episode)

    @property
    def faulted(self) -> bool:
        """Whether the campaign injects node failures."""
        return self.failure_config is not None


def campaign_from_seed(seed: int) -> Campaign:
    """Derive a randomized campaign from one integer seed.

    Even seeds inject node failures (so roughly half of any contiguous seed
    range exercises the fence/teardown/recovery paths); all other knobs are
    drawn from ranges wide enough to hit accepts, rejects, infeasibilities,
    mid-episode departures and auto-resets within a short drive.
    """
    rng = np.random.default_rng(seed)
    failure_config = None
    if seed % 2 == 0:
        failure_config = FailureConfig(
            mean_time_to_failure=float(rng.uniform(20.0, 60.0)),
            mean_time_to_repair=float(rng.uniform(5.0, 25.0)),
            seed=int(rng.integers(0, 2**31 - 1)),
        )
    return Campaign(
        seed=seed,
        num_lanes=int(rng.integers(1, 5)),
        steps=int(rng.integers(25, 61)),
        num_edge_nodes=int(rng.choice([4, 6])),
        arrival_rate=float(rng.uniform(0.4, 1.1)),
        horizon=float(rng.uniform(60.0, 160.0)),
        requests_per_episode=int(rng.integers(6, 15)),
        failure_config=failure_config,
    )


def masked_random_actions(masks: np.ndarray, rng: np.random.Generator) -> np.ndarray:
    """One uniformly-random valid action per lane (vectorized draw)."""
    counts = masks.sum(axis=1)
    draws = (rng.random(masks.shape[0]) * counts).astype(int)
    return (masks.cumsum(axis=1) > draws[:, None]).argmax(axis=1)


def _normalized_info(info: Dict[str, object]) -> Tuple[Dict[str, object], Optional[np.ndarray]]:
    """Split an info dict into comparable payload and terminal-state array."""
    payload = dict(info)
    terminal = payload.pop("terminal_state", None)
    return payload, None if terminal is None else np.asarray(terminal, dtype=float)


def drive(
    factory: Callable[[], object],
    steps: int,
    action_seed: int = 123,
    record_context: bool = True,
    reset_lane_at: Optional[Dict[int, int]] = None,
    observe: bool = True,
    info: bool = True,
) -> Dict[str, object]:
    """Run one backend through ``steps`` masked-random actions.

    ``factory`` builds the environment; the global request counter is reset
    first so in-process backends number requests identically.  The recorded
    trajectory holds, per step: masks, actions, (optionally) the decision
    context, post-step states/rewards/dones/infos, the lean-accessor arrays,
    per-lane running :class:`EpisodeStats` dictionaries and fenced-node id
    lists.  ``reset_lane_at`` maps step index -> lane to call ``reset_lane``
    on *before* that step's mask query (exercising mid-episode lane resets).

    ``observe`` / ``info`` select the lean-step protocol: masks (and hence
    the seeded action draw) are protocol-independent, so a lean drive walks
    the same trajectory as a full drive of the same campaign.  With
    ``info=False`` no ``"infos"`` entries are recorded (the step contract
    returns ``None``); the lean-accessor arrays carry the outcomes instead.
    """
    reset_request_counter()
    env = factory()
    try:
        rng = np.random.default_rng(action_seed)
        record: Dict[str, object] = {
            "observe": observe,
            "info": info,
            "reset": np.array(env.reset(observe=observe), dtype=float, copy=True),
            "steps": [],
        }
        for step_index in range(steps):
            if reset_lane_at and step_index in reset_lane_at:
                lane = reset_lane_at[step_index]
                record["steps"].append(
                    {
                        "reset_lane": lane,
                        "reset_lane_state": np.array(
                            env.reset_lane(lane), dtype=float, copy=True
                        ),
                    }
                )
            masks = np.array(env.valid_action_masks(), dtype=bool, copy=True)
            actions = masked_random_actions(masks, rng)
            entry: Dict[str, object] = {"masks": masks, "actions": actions.copy()}
            if record_context:
                context = env.lane_decision_context()
                entry["context"] = {
                    "active": np.array(context.active, copy=True),
                    "anchor_rows": np.array(context.anchor_rows, copy=True),
                    "demands": np.array(context.demands, copy=True),
                    "extras": np.array(context.extras, copy=True),
                    "budgets": np.array(context.budgets, copy=True),
                    "holding": np.array(context.holding, copy=True),
                    "used": np.array(context.used, copy=True),
                    "latency": np.array(context.latency, copy=True),
                    "free_tol": np.array(context.free_tol, copy=True),
                }
            states, rewards, dones, infos = env.step(
                actions, observe=observe, info=info
            )
            entry["states"] = np.array(states, dtype=float, copy=True)
            entry["rewards"] = np.array(rewards, dtype=float, copy=True)
            entry["dones"] = np.array(dones, dtype=bool, copy=True)
            if info:
                entry["infos"] = [_normalized_info(item) for item in infos]
            else:
                assert infos is None, "info=False must return infos=None"
            entry["outcome_codes"] = np.array(env.last_outcome_codes(), copy=True)
            entry["request_done"] = np.array(
                env.last_request_done(), dtype=bool, copy=True
            )
            entry["request_ids"] = np.array(
                env.last_request_ids(), dtype=np.int64, copy=True
            )
            entry["finished_stats"] = {
                lane: dict(env.last_episode_stats(lane))
                for lane in np.flatnonzero(entry["dones"]).tolist()
            }
            entry["stats"] = [stats.as_dict() for stats in env.lane_stats()]
            entry["failed_nodes"] = [list(failed) for failed in env.lane_failed_nodes()]
            record["steps"].append(entry)
        return record
    finally:
        env.close()


def _assert_bitwise(name: str, step: int, a: np.ndarray, b: np.ndarray) -> None:
    if not np.array_equal(np.asarray(a), np.asarray(b)):
        raise AssertionError(
            f"step {step}: {name} diverged\n  a={np.asarray(a)!r}\n  b={np.asarray(b)!r}"
        )


def assert_trajectories_equal(
    a: Dict[str, object],
    b: Dict[str, object],
    ignore_info_keys: Tuple[str, ...] = (),
) -> None:
    """Assert two :func:`drive` recordings are bitwise identical.

    ``ignore_info_keys`` drops process-local info labels (see
    :data:`PROCESS_LOCAL_INFO_KEYS`) before comparison; everything else —
    including float payloads — must match exactly, so any arithmetic
    reordering in a backend fails loudly rather than "close enough".
    """
    _assert_bitwise("reset states", -1, a["reset"], b["reset"])
    assert len(a["steps"]) == len(b["steps"]), (
        f"recordings have {len(a['steps'])} vs {len(b['steps'])} steps"
    )
    for step, (ea, eb) in enumerate(zip(a["steps"], b["steps"])):
        if "reset_lane" in ea or "reset_lane" in eb:
            assert ea.get("reset_lane") == eb.get("reset_lane"), (
                f"step {step}: lane resets diverged"
            )
            _assert_bitwise(
                "reset_lane state", step, ea["reset_lane_state"], eb["reset_lane_state"]
            )
            continue
        _assert_bitwise("masks", step, ea["masks"], eb["masks"])
        _assert_bitwise("actions", step, ea["actions"], eb["actions"])
        if "context" in ea and "context" in eb:
            for field in ea["context"]:
                _assert_bitwise(
                    f"context.{field}", step, ea["context"][field], eb["context"][field]
                )
        _assert_bitwise("states", step, ea["states"], eb["states"])
        _assert_bitwise("rewards", step, ea["rewards"], eb["rewards"])
        _assert_bitwise("dones", step, ea["dones"], eb["dones"])
        assert ("infos" in ea) == ("infos" in eb), (
            f"step {step}: one recording is lean (no infos), the other full; "
            "compare them with assert_lean_matches_full instead"
        )
        if "infos" in ea:
            assert len(ea["infos"]) == len(eb["infos"])
            for lane, ((info_a, term_a), (info_b, term_b)) in enumerate(
                zip(ea["infos"], eb["infos"])
            ):
                payload_a = {
                    k: v for k, v in info_a.items() if k not in ignore_info_keys
                }
                payload_b = {
                    k: v for k, v in info_b.items() if k not in ignore_info_keys
                }
                assert payload_a == payload_b, (
                    f"step {step} lane {lane}: infos diverged\n  a={payload_a}\n  b={payload_b}"
                )
                assert (term_a is None) == (term_b is None), (
                    f"step {step} lane {lane}: terminal_state presence diverged"
                )
                if term_a is not None:
                    _assert_bitwise("terminal_state", step, term_a, term_b)
        _assert_bitwise("outcome_codes", step, ea["outcome_codes"], eb["outcome_codes"])
        _assert_bitwise("request_done", step, ea["request_done"], eb["request_done"])
        if "request_id" not in ignore_info_keys:
            _assert_bitwise("request_ids", step, ea["request_ids"], eb["request_ids"])
        assert ea["finished_stats"] == eb["finished_stats"], (
            f"step {step}: finished-episode stats diverged\n"
            f"  a={ea['finished_stats']}\n  b={eb['finished_stats']}"
        )
        assert ea["stats"] == eb["stats"], (
            f"step {step}: lane stats diverged\n  a={ea['stats']}\n  b={eb['stats']}"
        )
        assert ea["failed_nodes"] == eb["failed_nodes"], (
            f"step {step}: fenced-node sets diverged\n"
            f"  a={ea['failed_nodes']}\n  b={eb['failed_nodes']}"
        )


def assert_lean_matches_full(
    lean: Dict[str, object],
    full: Dict[str, object],
    ignore_info_keys: Tuple[str, ...] = (),
) -> None:
    """Assert a lean-step recording matches a full-step recording bitwise.

    ``lean`` must come from ``drive(..., info=False)`` and ``full`` from a
    full-protocol drive of the *same campaign and action seed*.  Rewards,
    dones, masks, actions, running stats and fenced nodes compare directly;
    the lean outcome arrays compare against the fields of the info dicts
    they replace (outcome string, request_done, request_id, episode_stats).
    States compare only when both drives used the same ``observe`` setting
    (an ``observe=False`` drive returns zero vectors by contract).
    """
    assert lean.get("info") is False, "first recording must be a lean drive"
    assert full.get("info", True) is True, "second recording must be a full drive"
    compare_states = lean.get("observe", True) == full.get("observe", True)
    if compare_states:
        _assert_bitwise("reset states", -1, lean["reset"], full["reset"])
    assert len(lean["steps"]) == len(full["steps"]), (
        f"recordings have {len(lean['steps'])} vs {len(full['steps'])} steps"
    )
    for step, (el, ef) in enumerate(zip(lean["steps"], full["steps"])):
        if "reset_lane" in el or "reset_lane" in ef:
            assert el.get("reset_lane") == ef.get("reset_lane"), (
                f"step {step}: lane resets diverged"
            )
            if compare_states:
                _assert_bitwise(
                    "reset_lane state", step,
                    el["reset_lane_state"], ef["reset_lane_state"],
                )
            continue
        _assert_bitwise("masks", step, el["masks"], ef["masks"])
        _assert_bitwise("actions", step, el["actions"], ef["actions"])
        if compare_states:
            _assert_bitwise("states", step, el["states"], ef["states"])
        _assert_bitwise("rewards", step, el["rewards"], ef["rewards"])
        _assert_bitwise("dones", step, el["dones"], ef["dones"])
        full_infos = [payload for payload, _ in ef["infos"]]
        _assert_bitwise(
            "outcome_codes", step,
            el["outcome_codes"],
            np.array([OUTCOME_CODE[i["outcome"]] for i in full_infos], dtype=np.int8),
        )
        _assert_bitwise(
            "request_done", step,
            el["request_done"],
            np.array([i["request_done"] for i in full_infos], dtype=bool),
        )
        if "request_id" not in ignore_info_keys:
            _assert_bitwise(
                "request_ids", step,
                el["request_ids"],
                np.array([i["request_id"] for i in full_infos], dtype=np.int64),
            )
        for lane in np.flatnonzero(np.asarray(el["dones"])).tolist():
            assert el["finished_stats"][lane] == full_infos[lane]["episode_stats"], (
                f"step {step} lane {lane}: finished-episode stats diverged\n"
                f"  lean={el['finished_stats'][lane]}\n"
                f"  full={full_infos[lane]['episode_stats']}"
            )
        assert el["stats"] == ef["stats"], (
            f"step {step}: lane stats diverged\n  a={el['stats']}\n  b={ef['stats']}"
        )
        assert el["failed_nodes"] == ef["failed_nodes"], (
            f"step {step}: fenced-node sets diverged\n"
            f"  a={el['failed_nodes']}\n  b={ef['failed_nodes']}"
        )


__all__ = [
    "PROCESS_LOCAL_INFO_KEYS",
    "Campaign",
    "assert_lean_matches_full",
    "assert_trajectories_equal",
    "campaign_from_seed",
    "drive",
    "masked_random_actions",
]
