"""Unit tests for the VNF placement environment."""

import numpy as np
import pytest

from repro.core.env import EnvConfig, VNFPlacementEnv
from repro.nfv.catalog import default_catalog
from repro.substrate.topology import TopologyConfig, metro_edge_cloud_topology
from repro.workloads.generator import RequestGenerator, WorkloadConfig


@pytest.fixture
def env():
    network = metro_edge_cloud_topology(TopologyConfig(num_edge_nodes=6, seed=5))
    generator = RequestGenerator(
        network=network,
        config=WorkloadConfig(arrival_rate=0.5, horizon=200.0, seed=9),
    )
    return VNFPlacementEnv(
        network=network,
        generator=generator,
        config=EnvConfig(requests_per_episode=8),
    )


class TestEpisodeLifecycle:
    def test_reset_returns_valid_state(self, env):
        state = env.reset()
        assert state.shape == (env.state_dim,)
        assert env.current_request is not None
        assert env.stats.requests_seen == 1

    def test_step_before_reset_raises(self, env):
        with pytest.raises(RuntimeError):
            env.step(0)

    def test_episode_terminates_after_all_requests(self, env):
        env.reset()
        done = False
        steps = 0
        while not done and steps < 500:
            mask = env.valid_action_mask()
            action = int(np.flatnonzero(mask)[0])
            _, _, done, info = env.step(action)
            steps += 1
        assert done
        assert env.stats.requests_seen == 8
        assert env.stats.accepted + env.stats.rejected + env.stats.infeasible == 8
        assert info["episode_stats"] is not None

    def test_invalid_action_rejected(self, env):
        env.reset()
        with pytest.raises(ValueError):
            env.step(env.num_actions + 3)

    def test_reset_clears_statistics_and_allocations(self, env):
        env.reset()
        # Accept a few requests by always taking the first valid node action.
        for _ in range(30):
            mask = env.valid_action_mask()
            node_actions = np.flatnonzero(mask[:-1])
            action = int(node_actions[0]) if node_actions.size else env.actions.reject_action
            _, _, done, _ = env.step(action)
            if done:
                break
        env.reset()
        assert env.stats.requests_seen == 1
        assert env.stats.accepted == 0


class TestRewards:
    def test_reject_action_gives_penalty(self, env):
        env.reset()
        _, reward, _, info = env.step(env.actions.reject_action)
        assert reward == pytest.approx(-env.rewards.config.reject_penalty)
        assert info["outcome"] == "rejected"
        assert info["request_done"] is True

    def test_accepting_full_chain_gives_positive_total(self, env):
        env.reset()
        total = 0.0
        outcome = None
        # Greedily place on the lowest-latency valid node until the request completes.
        for _ in range(10):
            request = env.current_request
            mask = env.valid_action_mask()
            anchor = env.encoder.anchor_node(request, env._partial_assignment)
            node_actions = [
                a for a in np.flatnonzero(mask[:-1])
            ]
            assert node_actions, "expected at least one feasible node on an empty substrate"
            best = min(
                node_actions,
                key=lambda a: env.network.latency_between(anchor, env.actions.node_for_action(a)),
            )
            _, reward, _, info = env.step(int(best))
            total += reward
            if info["request_done"]:
                outcome = info["outcome"]
                break
        assert outcome == "accepted"
        assert total > 0

    def test_accepted_requests_consume_resources(self, env):
        env.reset()
        for _ in range(50):
            mask = env.valid_action_mask()
            node_actions = np.flatnonzero(mask[:-1])
            action = int(node_actions[0]) if node_actions.size else env.actions.reject_action
            _, _, done, info = env.step(action)
            if info.get("outcome") == "accepted":
                break
        assert env.network.total_used().total() > 0

    def test_mask_has_reject_plus_nodes_on_fresh_substrate(self, env):
        env.reset()
        mask = env.valid_action_mask()
        assert mask[env.actions.reject_action]
        assert mask[:-1].sum() > 0

    def test_stats_dict_fields(self, env):
        env.reset()
        env.step(env.actions.reject_action)
        stats = env.stats.as_dict()
        assert stats["rejected"] == 1
        assert stats["requests_seen"] >= 1
        assert "acceptance_ratio" in stats


class TestDeterminism:
    def test_same_seed_same_first_request(self):
        def build():
            network = metro_edge_cloud_topology(TopologyConfig(num_edge_nodes=6, seed=5))
            generator = RequestGenerator(
                network=network,
                config=WorkloadConfig(arrival_rate=0.5, horizon=200.0, seed=9),
            )
            return VNFPlacementEnv(network=network, generator=generator, config=EnvConfig(requests_per_episode=4))

        a, b = build(), build()
        state_a, state_b = a.reset(), b.reset()
        assert np.allclose(state_a, state_b)
        assert a.current_request.service_class == b.current_request.service_class
        assert a.current_request.bandwidth_mbps == pytest.approx(b.current_request.bandwidth_mbps)

    def test_state_dim_and_num_actions_consistent_with_components(self, env):
        assert env.state_dim == env.encoder.state_dim
        assert env.num_actions == env.actions.num_actions
        assert env.num_actions == env.network.num_nodes + 1
