"""Equivalence and behavior tests for the batched PlacementPolicy protocol."""

import numpy as np
import pytest

from repro.baselines import (
    BestFitPolicy,
    BruteForceOptimalPolicy,
    CloudOnlyPolicy,
    EdgeOnlyPolicy,
    FirstFitPolicy,
    GreedyCheapestPolicy,
    GreedyLeastLoadedPolicy,
    GreedyNearestPolicy,
    RandomPlacementPolicy,
    ViterbiPlacementPolicy,
    standard_baselines,
)
from repro.core.env import EnvConfig
from repro.core.vecenv import VecPlacementEnv, lane_workload_seed, make_lane_env
from repro.experiments.runner import (
    evaluate_baseline_across_scenarios,
)
from repro.sim.failures import FailureConfig
from repro.workloads.scenarios import reference_scenario, scenario_grid

SEED = 2
ENV_CONFIG = EnvConfig(requests_per_episode=10, latency_mask_check=False)

#: Heuristics with vectorized select_actions kernels.
KERNEL_FACTORIES = [
    GreedyNearestPolicy,
    GreedyLeastLoadedPolicy,
    GreedyCheapestPolicy,
    FirstFitPolicy,
    BestFitPolicy,
    CloudOnlyPolicy,
    EdgeOnlyPolicy,
]

#: Heuristics riding the per-request plan-cache reference path.
PLAN_FACTORIES = [
    lambda: RandomPlacementPolicy(seed=7),
    lambda: ViterbiPlacementPolicy(cost_weight=0.2, load_weight=0.2),
    lambda: BruteForceOptimalPolicy(max_assignments=100_000, fallback_to_reject=True),
]


def sweep_grid():
    base = reference_scenario(
        arrival_rate=0.9, num_edge_nodes=8, horizon=150.0, seed=3
    )
    return scenario_grid(base, arrival_rates=(0.4, 0.8, 1.2))


class TestBatchedMatchesReference:
    """Vectorized select_actions must be decision-for-decision identical to
    the per-request plan_assignment reference on identical lanes."""

    @pytest.mark.parametrize(
        "factory", KERNEL_FACTORIES, ids=lambda f: f().name
    )
    def test_kernel_equals_reference_bitwise(self, factory):
        grid = sweep_grid()
        venv_batched = VecPlacementEnv.from_scenarios(
            grid, seed=SEED, env_config=ENV_CONFIG
        )
        venv_reference = VecPlacementEnv.from_scenarios(
            grid, seed=SEED, env_config=ENV_CONFIG
        )
        batched = factory().bind_lanes(venv_batched)
        reference = factory().bind_lanes(venv_reference)
        venv_batched.reset(observe=False)
        venv_reference.reset(observe=False)
        for step in range(120):
            batched_actions = batched.select_actions(
                masks=venv_batched.valid_action_masks()
            )
            reference_actions = reference.select_actions_reference()
            np.testing.assert_array_equal(
                batched_actions, reference_actions,
                err_msg=f"{batched.name} diverged at step {step}",
            )
            venv_batched.step(batched_actions, observe=False)
            venv_reference.step(reference_actions, observe=False)

    @pytest.mark.parametrize(
        "factory",
        KERNEL_FACTORIES,
        ids=lambda f: f().name,
    )
    def test_kernel_without_shared_context_equals_reference(self, factory):
        # Bind to a plain env list (no VecPlacementEnv context): the per-lane
        # fallback kernels must still match the reference path.
        grid = sweep_grid()
        lanes_a = [
            make_lane_env(cell, lane_workload_seed(SEED, i, cell.name), ENV_CONFIG)
            for i, cell in enumerate(grid)
        ]
        lanes_b = [
            make_lane_env(cell, lane_workload_seed(SEED, i, cell.name), ENV_CONFIG)
            for i, cell in enumerate(grid)
        ]
        batched = factory().bind_lanes(lanes_a)
        reference = factory().bind_lanes(lanes_b)
        for env in (*lanes_a, *lanes_b):
            env.reset(observe=False)
        for step in range(60):
            batched_actions = batched.select_actions()
            reference_actions = reference.select_actions_reference()
            np.testing.assert_array_equal(batched_actions, reference_actions)
            for lanes, actions in ((lanes_a, batched_actions), (lanes_b, reference_actions)):
                for lane, env in enumerate(lanes):
                    _, _, done, _ = env.step(int(actions[lane]), observe=False)
                    if done:
                        env.reset(observe=False)

    @pytest.mark.parametrize(
        "factory", PLAN_FACTORIES, ids=lambda f: f().name
    )
    def test_plan_policies_vec_equals_per_lane_serial(self, factory):
        grid = sweep_grid()
        venv = VecPlacementEnv.from_scenarios(grid, seed=SEED, env_config=ENV_CONFIG)
        policy = factory().bind_lanes(venv)
        venv.reset(observe=False)
        trajectory = []
        for _ in range(50):
            actions = policy.select_actions(masks=venv.valid_action_masks())
            trajectory.append(actions.copy())
            venv.step(actions, observe=False)
        for lane, cell in enumerate(grid):
            env = make_lane_env(
                cell, lane_workload_seed(SEED, lane, cell.name), ENV_CONFIG
            )
            serial = factory().bind_lanes([env])
            env.reset(observe=False)
            for step in range(50):
                action = serial.select_actions(
                    masks=np.stack([env.valid_action_mask()])
                )
                assert action[0] == trajectory[step][lane], (
                    f"{serial.name} lane {lane} step {step}"
                )
                _, _, done, _ = env.step(int(action[0]), observe=False)
                if done:
                    env.reset(observe=False)


class TestPlanAssignmentParity:
    def test_plan_matches_place(self, small_network, catalog):
        from tests.conftest import build_request

        request = build_request(catalog, source=0, sla_ms=100.0)
        for policy in standard_baselines(seed=0):
            assignment = policy.plan_assignment(request, small_network)
            placement = policy.place(request, small_network)
            if placement is None:
                assert assignment is None or placement is None
            else:
                assert tuple(assignment) == placement.node_assignment

    def test_random_policy_is_request_deterministic(self, small_network, catalog):
        from tests.conftest import build_request

        request = build_request(catalog, source=0, sla_ms=100.0)
        policy = RandomPlacementPolicy(seed=11)
        first = policy.plan_assignment(request, small_network)
        second = policy.plan_assignment(request, small_network)
        assert first == second
        fresh = RandomPlacementPolicy(seed=11)
        assert fresh.plan_assignment(request, small_network) == first


class TestProtocolPlumbing:
    def test_unbound_policy_raises(self):
        policy = FirstFitPolicy()
        with pytest.raises(RuntimeError, match="not bound"):
            policy.select_actions()

    def test_bind_empty_lanes_rejected(self):
        with pytest.raises(ValueError):
            FirstFitPolicy().bind_lanes([])

    def test_reset_clears_plan_cache(self):
        grid = sweep_grid()
        venv = VecPlacementEnv.from_scenarios(grid, seed=SEED, env_config=ENV_CONFIG)
        policy = ViterbiPlacementPolicy().bind_lanes(venv)
        venv.reset(observe=False)
        policy.select_actions(masks=venv.valid_action_masks())
        assert any(rid is not None for rid in policy._lane_request_ids)
        policy.reset()
        assert all(rid is None for rid in policy._lane_request_ids)
        assert all(plan is None for plan in policy._lane_plans)

    def test_finished_lane_selects_reject(self):
        scenario = reference_scenario(
            arrival_rate=0.6, num_edge_nodes=6, horizon=60.0, seed=1
        )
        env = make_lane_env(scenario, 0, EnvConfig(requests_per_episode=2))
        policy = FirstFitPolicy().bind_lanes([env])
        env.reset(observe=False)
        for _ in range(30):
            action = int(policy.select_actions()[0])
            _, _, done, _ = env.step(action, observe=False)
            if done:
                break
        assert done
        # The episode is over: the only selectable action is reject.
        assert int(policy.select_actions()[0]) == env.actions.reject_action


class TestRunnerBaselineEvaluation:
    def test_evaluate_baseline_across_scenarios(self):
        grid = sweep_grid()[:2]
        results = evaluate_baseline_across_scenarios(
            GreedyNearestPolicy(),
            grid,
            episodes_per_scenario=2,
            seed=1,
            env_config=ENV_CONFIG,
        )
        assert len(results) == 2
        for result in results:
            assert result.episodes == 2
            assert 0.0 <= result.mean_acceptance <= 1.0
            assert result.mean_disrupted == 0.0

    def test_evaluate_baseline_with_failures_reports_disruptions(self):
        grid = sweep_grid()[:2]
        results = evaluate_baseline_across_scenarios(
            FirstFitPolicy(),
            grid,
            episodes_per_scenario=2,
            seed=1,
            env_config=ENV_CONFIG,
            failure_config=FailureConfig(
                mean_time_to_failure=4.0, mean_time_to_repair=2.0, seed=0
            ),
        )
        assert len(results) == 2
        assert all(result.mean_disrupted >= 0.0 for result in results)
