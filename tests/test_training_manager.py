"""Tests for the training loop, the VNF manager facade and the DRL policy."""

import numpy as np
import pytest

from repro.agents.dqn import DQNAgent, DQNConfig
from repro.agents.qlearning import TabularQLearningAgent
from repro.core.env import EnvConfig, VNFPlacementEnv
from repro.core.manager import ManagerConfig, VNFManager
from repro.core.policy import DRLPlacementPolicy
from repro.core.training import Trainer, TrainingConfig
from repro.sim.simulation import NFVSimulation, SimulationConfig
from repro.workloads.scenarios import reference_scenario


def small_manager(num_episodes=3, seed=0):
    scenario = reference_scenario(arrival_rate=0.6, num_edge_nodes=6, horizon=80.0, seed=2)
    config = ManagerConfig(
        training=TrainingConfig(num_episodes=num_episodes, evaluation_interval=2, evaluation_episodes=1),
        env=EnvConfig(requests_per_episode=8),
        dqn=DQNConfig(
            hidden_layers=(16, 16), min_replay_size=16, batch_size=16, epsilon_decay_steps=300
        ),
    )
    return VNFManager(scenario, config=config, seed=seed)


class TestTrainer:
    def test_dimension_mismatch_rejected(self):
        manager = small_manager()
        env = manager.env
        wrong_agent = DQNAgent(env.state_dim + 1, env.num_actions, config=DQNConfig(
            hidden_layers=(8,), min_replay_size=16, batch_size=16))
        with pytest.raises(ValueError):
            Trainer(env, wrong_agent)

    def test_training_history_lengths(self):
        manager = small_manager(num_episodes=4)
        history = manager.train()
        assert len(history.episode_rewards) == 4
        assert len(history.episode_acceptance) == 4
        assert len(history.evaluation_rewards) == 2  # evaluated every 2 episodes
        assert history.evaluation_episodes_at == [2, 4]

    def test_moving_average_shape(self):
        manager = small_manager(num_episodes=4)
        history = manager.train()
        smoothed = history.moving_average_reward(window=2)
        assert len(smoothed) == 4
        assert smoothed[0] == pytest.approx(history.episode_rewards[0])

    def test_moving_average_empty_history(self):
        from repro.core.training import TrainingHistory

        assert TrainingHistory().moving_average_reward(window=5) == []

    def test_moving_average_window_one_is_identity(self):
        from repro.core.training import TrainingHistory

        history = TrainingHistory(episode_rewards=[1.0, -2.0, 4.0])
        smoothed = history.moving_average_reward(window=1)
        assert smoothed == pytest.approx([1.0, -2.0, 4.0])

    def test_moving_average_window_larger_than_history(self):
        from repro.core.training import TrainingHistory

        rewards = [2.0, 4.0, 6.0]
        history = TrainingHistory(episode_rewards=rewards)
        smoothed = history.moving_average_reward(window=100)
        # Every prefix mean, length preserved, last entry = global mean.
        assert len(smoothed) == 3
        assert smoothed[0] == pytest.approx(2.0)
        assert smoothed[1] == pytest.approx(3.0)
        assert smoothed[2] == pytest.approx(4.0)

    def test_evaluation_result_fields(self):
        manager = small_manager(num_episodes=2)
        manager.train()
        result = manager.evaluate_agent(episodes=2)
        assert result.episodes == 2
        assert 0.0 <= result.mean_acceptance <= 1.0
        assert np.isfinite(result.mean_reward)

    def test_trainer_works_with_tabular_agent(self):
        manager = small_manager()
        env = manager.env
        agent = TabularQLearningAgent(env.state_dim, env.num_actions, seed=0)
        trainer = Trainer(env, agent, TrainingConfig(num_episodes=2, evaluation_interval=2, evaluation_episodes=1))
        history = trainer.train()
        assert len(history.episode_rewards) == 2
        assert agent.table_size > 0

    def test_history_as_dict(self):
        manager = small_manager(num_episodes=2)
        history = manager.train()
        data = history.as_dict()
        assert set(data) >= {"episode_rewards", "episode_acceptance", "evaluation_rewards"}


class TestManager:
    def test_training_marks_trained(self):
        manager = small_manager(num_episodes=2)
        assert not manager.is_trained
        manager.train()
        assert manager.is_trained

    def test_online_evaluation_summary(self):
        manager = small_manager(num_episodes=2)
        manager.train()
        result = manager.evaluate_online()
        assert result.summary.total_requests > 0
        assert 0.0 <= result.summary.acceptance_ratio <= 1.0

    def test_save_and_load_agent(self, tmp_path):
        manager = small_manager(num_episodes=2)
        manager.train()
        path = manager.save_agent(tmp_path / "agent.npz")
        fresh = small_manager(num_episodes=2, seed=3)
        fresh.load_agent(path)
        assert fresh.is_trained
        state = np.zeros(fresh.env.state_dim)
        assert np.allclose(fresh.agent.q_values(state), manager.agent.q_values(state))

    def test_summary_fields(self):
        manager = small_manager()
        summary = manager.summary()
        assert summary["agent"] == "dqn"
        assert summary["state_dim"] == manager.env.state_dim
        assert summary["trained"] is False

    def test_manager_with_vectorized_training_lanes(self):
        from repro.core.training import VecTrainer

        scenario = reference_scenario(
            arrival_rate=0.6, num_edge_nodes=6, horizon=80.0, seed=2
        )
        config = ManagerConfig(
            training=TrainingConfig(
                num_episodes=4, evaluation_interval=2, evaluation_episodes=1
            ),
            env=EnvConfig(requests_per_episode=6),
            dqn=DQNConfig(
                hidden_layers=(16, 16), min_replay_size=16, batch_size=16,
                epsilon_decay_steps=300,
            ),
            training_lanes=3,
        )
        manager = VNFManager(scenario, config=config, seed=0)
        assert isinstance(manager.trainer, VecTrainer)
        assert not isinstance(manager.trainer, Trainer)
        assert manager.trainer.num_lanes == 3
        history = manager.train()
        assert manager.is_trained
        assert len(history.episode_rewards) == 4
        assert history.evaluation_episodes_at == [2, 4]

    def test_manager_rejects_nonpositive_lanes(self):
        with pytest.raises(ValueError):
            ManagerConfig(training_lanes=0)


class TestDRLPlacementPolicy:
    def test_policy_produces_feasible_placements(self):
        manager = small_manager(num_episodes=2)
        manager.train()
        network = manager.scenario.build_network()
        policy = manager.build_policy(network)
        requests = manager.scenario.generate_requests(horizon=60.0)
        accepted = 0
        for request in requests[:20]:
            placement = policy.place(request, network)
            if placement is not None:
                assert placement.is_feasible(network)
                assert placement.satisfies_sla(network)
                accepted += 1
        assert accepted > 0

    def test_policy_name_includes_agent(self):
        manager = small_manager()
        policy = manager.build_policy()
        assert policy.name == "drl_dqn"

    def test_policy_runs_in_simulation(self):
        manager = small_manager(num_episodes=2)
        manager.train()
        network = manager.scenario.build_network()
        policy = manager.build_policy(network)
        requests = manager.scenario.generate_requests(horizon=60.0)
        simulation = NFVSimulation(network, policy, SimulationConfig(horizon=60.0))
        result = simulation.run(requests)
        assert result.summary.total_requests == len(requests)

    def test_untrained_policy_still_returns_valid_decisions(self):
        manager = small_manager()
        network = manager.scenario.build_network()
        policy = DRLPlacementPolicy(manager.agent, network, manager.scenario.catalog)
        request = manager.scenario.generate_requests(horizon=20.0)[0]
        placement = policy.place(request, network)
        assert placement is None or placement.is_feasible(network)
