"""Unit tests for the discrete-event engine."""

import pytest

from repro.sim.engine import EventEngine, SimulationClockError
from repro.sim.events import (
    Event,
    EventType,
    arrival_event,
    departure_event,
    end_event,
    monitoring_event,
)


class TestEvents:
    def test_event_ordering_by_time(self):
        early = Event.create(1.0, EventType.MONITORING)
        late = Event.create(2.0, EventType.MONITORING)
        assert early < late

    def test_tie_broken_by_sequence(self):
        first = Event.create(1.0, EventType.MONITORING)
        second = Event.create(1.0, EventType.MONITORING)
        assert first < second  # FIFO among simultaneous events

    def test_negative_time_rejected(self):
        with pytest.raises(ValueError):
            Event.create(-1.0, EventType.MONITORING)

    def test_factory_helpers(self):
        assert arrival_event(1.0, "req").event_type is EventType.REQUEST_ARRIVAL
        assert departure_event(2.0, 7).payload == 7
        assert monitoring_event(3.0).event_type is EventType.MONITORING
        assert end_event(4.0).event_type is EventType.END_OF_SIMULATION


class TestEngine:
    def test_events_processed_in_time_order(self):
        engine = EventEngine()
        seen = []
        engine.on(EventType.MONITORING, lambda e: seen.append(e.time))
        for t in (3.0, 1.0, 2.0):
            engine.schedule(monitoring_event(t))
        engine.run()
        assert seen == [1.0, 2.0, 3.0]
        assert engine.now == 3.0
        assert engine.processed_events == 3

    def test_run_until_time_limit(self):
        engine = EventEngine()
        seen = []
        engine.on(EventType.MONITORING, lambda e: seen.append(e.time))
        for t in (1.0, 2.0, 3.0):
            engine.schedule(monitoring_event(t))
        processed = engine.run(until=2.0)
        assert processed == 2
        assert seen == [1.0, 2.0]
        assert engine.pending_events == 1

    def test_run_max_events(self):
        engine = EventEngine()
        for t in range(5):
            engine.schedule(monitoring_event(float(t)))
        assert engine.run(max_events=3) == 3
        assert engine.pending_events == 2

    def test_end_of_simulation_stops_run(self):
        engine = EventEngine()
        seen = []
        engine.on(EventType.MONITORING, lambda e: seen.append(e.time))
        engine.schedule(monitoring_event(1.0))
        engine.schedule(end_event(2.0))
        engine.schedule(monitoring_event(3.0))
        engine.run()
        assert seen == [1.0]
        assert engine.pending_events == 1

    def test_handler_can_schedule_future_events(self):
        engine = EventEngine()
        seen = []

        def handler(event):
            seen.append(event.time)
            if event.time < 3.0:
                engine.schedule(monitoring_event(event.time + 1.0))

        engine.on(EventType.MONITORING, handler)
        engine.schedule(monitoring_event(1.0))
        engine.run()
        assert seen == [1.0, 2.0, 3.0]

    def test_scheduling_in_the_past_rejected(self):
        engine = EventEngine()
        engine.schedule(monitoring_event(5.0))
        engine.run()
        with pytest.raises(SimulationClockError):
            engine.schedule(monitoring_event(1.0))

    def test_schedule_all_enqueues_every_event(self):
        engine = EventEngine()
        engine.schedule_all(monitoring_event(t) for t in (3.0, 1.0, 2.0))
        assert engine.pending_events == 3
        engine.run()
        assert engine.processed_events == 3

    def test_schedule_all_rejects_past_events_atomically(self):
        engine = EventEngine()
        engine.schedule(monitoring_event(5.0))
        engine.run()  # clock is now at t=5
        with pytest.raises(SimulationClockError, match="event 1 of 2"):
            engine.schedule_all([monitoring_event(6.0), monitoring_event(1.0)])
        # The valid leading event must not have been enqueued either.
        assert engine.pending_events == 0

    def test_stop_requests_halt(self):
        engine = EventEngine()
        engine.on(EventType.MONITORING, lambda e: engine.stop())
        for t in (1.0, 2.0, 3.0):
            engine.schedule(monitoring_event(t))
        engine.run()
        assert engine.processed_events == 1

    def test_multiple_handlers_all_called(self):
        engine = EventEngine()
        calls = []
        engine.on(EventType.MONITORING, lambda e: calls.append("a"))
        engine.on(EventType.MONITORING, lambda e: calls.append("b"))
        engine.schedule(monitoring_event(1.0))
        engine.run()
        assert calls == ["a", "b"]

    def test_reset(self):
        engine = EventEngine()
        engine.schedule(monitoring_event(1.0))
        engine.run()
        engine.reset()
        assert engine.now == 0.0
        assert engine.pending_events == 0
        assert engine.processed_events == 0

    def test_step_on_empty_queue_returns_none(self):
        assert EventEngine().step() is None
