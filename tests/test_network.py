"""Unit tests for the substrate network (routing, allocation, statistics)."""

import pytest

from repro.substrate.geo import GeoPoint
from repro.substrate.link import InsufficientBandwidthError
from repro.substrate.network import NoRouteError, SubstrateNetwork, UnknownNodeError
from repro.substrate.node import ComputeNode, NodeTier, make_cloud_node
from repro.substrate.resources import ResourceVector


def build_triangle():
    """Three edge nodes in a triangle with asymmetric latencies."""
    network = SubstrateNetwork()
    capacity = ResourceVector(10, 10, 10)
    for node_id in range(3):
        network.add_node(
            ComputeNode(node_id, GeoPoint(40.0 + node_id * 0.01, -74.0), capacity)
        )
    network.add_link(0, 1, 100.0, latency_ms=1.0)
    network.add_link(1, 2, 100.0, latency_ms=1.0)
    network.add_link(0, 2, 100.0, latency_ms=5.0)
    return network


class TestConstruction:
    def test_duplicate_node_rejected(self):
        network = SubstrateNetwork()
        network.add_node(ComputeNode(0, GeoPoint(0, 0), ResourceVector(1, 1, 1)))
        with pytest.raises(ValueError):
            network.add_node(ComputeNode(0, GeoPoint(0, 0), ResourceVector(1, 1, 1)))

    def test_link_requires_known_nodes(self):
        network = SubstrateNetwork()
        network.add_node(ComputeNode(0, GeoPoint(0, 0), ResourceVector(1, 1, 1)))
        with pytest.raises(UnknownNodeError):
            network.add_link(0, 1, 100.0)

    def test_duplicate_link_rejected(self):
        network = build_triangle()
        with pytest.raises(ValueError):
            network.add_link(1, 0, 100.0)

    def test_link_latency_derived_from_geography_when_missing(self):
        network = SubstrateNetwork()
        network.add_node(ComputeNode(0, GeoPoint(40.0, -74.0), ResourceVector(1, 1, 1)))
        network.add_node(ComputeNode(1, GeoPoint(41.0, -74.0), ResourceVector(1, 1, 1)))
        link = network.add_link(0, 1, 100.0)
        assert link.latency_ms > 0.35  # more than just the hop overhead

    def test_node_tier_queries(self):
        network = build_triangle()
        network.add_node(make_cloud_node(9, GeoPoint(39.0, -104.0)))
        network.add_link(2, 9, 1000.0, latency_ms=20.0)
        assert set(network.edge_node_ids) == {0, 1, 2}
        assert network.cloud_node_ids == [9]
        assert network.num_nodes == 4
        assert network.is_connected()


class TestRouting:
    def test_shortest_path_prefers_low_latency(self):
        network = build_triangle()
        path = network.shortest_path(0, 2)
        assert path.nodes == (0, 1, 2)
        assert path.latency_ms == pytest.approx(2.0)
        assert path.hop_count == 2

    def test_path_to_self(self):
        network = build_triangle()
        path = network.shortest_path(1, 1)
        assert path.nodes == (1,)
        assert path.latency_ms == 0.0
        assert path.links() == []

    def test_latency_between_symmetric(self):
        network = build_triangle()
        assert network.latency_between(0, 2) == network.latency_between(2, 0)

    def test_no_route_error(self):
        network = build_triangle()
        network.add_node(ComputeNode(7, GeoPoint(10, 10), ResourceVector(1, 1, 1)))
        with pytest.raises(NoRouteError):
            network.shortest_path(0, 7)
        assert not network.is_connected()

    def test_unknown_node_in_routing(self):
        network = build_triangle()
        with pytest.raises(UnknownNodeError):
            network.shortest_path(0, 99)

    def test_nodes_sorted_by_latency(self):
        network = build_triangle()
        assert network.nodes_sorted_by_latency_from(0) == [0, 1, 2]

    def test_nearest_node_by_geography(self):
        network = build_triangle()
        nearest = network.nearest_node(GeoPoint(40.021, -74.0))
        assert nearest == 2


class TestPathBandwidth:
    def test_available_bandwidth_is_bottleneck(self):
        network = build_triangle()
        network.link(0, 1).reserve("x", 60.0)
        assert network.path_available_bandwidth([0, 1, 2]) == pytest.approx(40.0)
        assert network.path_can_carry([0, 1, 2], 40.0)
        assert not network.path_can_carry([0, 1, 2], 41.0)

    def test_single_node_path_has_infinite_bandwidth(self):
        network = build_triangle()
        assert network.path_available_bandwidth([1]) == float("inf")

    def test_allocate_path_and_release(self):
        network = build_triangle()
        network.allocate_path([0, 1, 2], "flow", 30.0)
        assert network.link(0, 1).used_bandwidth == 30.0
        assert network.link(1, 2).used_bandwidth == 30.0
        network.release_path([0, 1, 2], "flow")
        assert network.link(0, 1).used_bandwidth == 0.0

    def test_allocate_path_rolls_back_on_failure(self):
        network = build_triangle()
        network.link(1, 2).reserve("other", 90.0)
        with pytest.raises(InsufficientBandwidthError):
            network.allocate_path([0, 1, 2], "flow", 30.0)
        # The first link must have been rolled back.
        assert network.link(0, 1).used_bandwidth == 0.0

    def test_release_path_is_idempotent_for_missing_handles(self):
        network = build_triangle()
        # Releasing a handle never reserved must not raise.
        network.release_path([0, 1, 2], "ghost")


class TestStatistics:
    def test_total_capacity_and_usage(self):
        network = build_triangle()
        assert network.total_capacity().cpu == 30.0
        network.allocate_node(0, "a", ResourceVector(5, 5, 5))
        assert network.total_used().cpu == 5.0
        assert network.total_used(NodeTier.CLOUD).is_zero()

    def test_mean_utilization_and_imbalance(self):
        network = build_triangle()
        assert network.mean_node_utilization() == 0.0
        assert network.utilization_imbalance() == 0.0
        network.allocate_node(0, "a", ResourceVector(10, 10, 10))
        assert network.mean_node_utilization() == pytest.approx(1.0 / 3.0)
        assert network.utilization_imbalance() > 0.0

    def test_cost_rate_reflects_allocations(self):
        network = build_triangle()
        assert network.compute_cost_rate() == 0.0
        network.allocate_node(1, "a", ResourceVector(2, 2, 2))
        network.link(0, 1).reserve("f", 10.0)
        assert network.compute_cost_rate() > 0.0

    def test_reset_clears_all_allocations(self):
        network = build_triangle()
        network.allocate_node(0, "a", ResourceVector(1, 1, 1))
        network.allocate_path([0, 1], "f", 10.0)
        network.reset()
        assert network.total_used().is_zero()
        assert network.link(0, 1).used_bandwidth == 0.0

    def test_snapshot_structure(self):
        network = build_triangle()
        snapshot = network.snapshot()
        assert snapshot["num_nodes"] == 3
        assert snapshot["num_links"] == 3
        assert len(snapshot["nodes"]) == 3
