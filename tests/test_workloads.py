"""Unit tests for workload generation and scenarios."""

import pytest

from repro.workloads.generator import RequestGenerator, WorkloadConfig
from repro.workloads.scenarios import (
    diurnal_scenario,
    hotspot_scenario,
    reference_scenario,
    scalability_scenario,
)


class TestRequestGenerator:
    def test_sampled_requests_are_valid(self, generator, edge_cloud_network):
        for _ in range(20):
            request = generator.sample_request(arrival_time=1.0)
            assert request.source_node_id in edge_cloud_network.edge_node_ids
            assert request.bandwidth_mbps > 0
            assert request.sla.max_latency_ms > 0
            assert request.holding_time >= 1.0
            assert request.num_vnfs >= 1

    def test_trace_is_time_ordered(self, generator):
        trace = generator.generate_trace(horizon=50.0)
        times = [r.arrival_time for r in trace]
        assert times == sorted(times)
        assert all(t <= 50.0 for t in times)

    def test_batch_count_and_rate(self, generator):
        batch = generator.generate_batch(30)
        assert len(batch) == 30
        times = [r.arrival_time for r in batch]
        assert times == sorted(times)
        # Mean inter-arrival should be near 1/arrival_rate = 2.0.
        gaps = [b - a for a, b in zip(times, times[1:])]
        assert 0.5 < sum(gaps) / len(gaps) < 5.0

    def test_class_mix_roughly_matches_weights(self, edge_cloud_network, catalog, templates):
        generator = RequestGenerator(
            edge_cloud_network,
            catalog,
            templates,
            WorkloadConfig(arrival_rate=1.0, horizon=100.0, seed=1),
        )
        requests = [generator.sample_request() for _ in range(600)]
        mix = generator.class_mix(requests)
        assert mix["web_service"] > mix["ar_vr_offload"]
        assert abs(mix["web_service"] - 0.30) < 0.10

    def test_hotspot_skew(self, edge_cloud_network, catalog, templates):
        hotspots = tuple(edge_cloud_network.edge_node_ids[:2])
        generator = RequestGenerator(
            edge_cloud_network,
            catalog,
            templates,
            WorkloadConfig(
                arrival_rate=1.0,
                horizon=100.0,
                hotspot_fraction=0.9,
                hotspot_nodes=hotspots,
                seed=2,
            ),
        )
        sources = [generator.sample_source_node() for _ in range(300)]
        hotspot_fraction = sum(1 for s in sources if s in hotspots) / len(sources)
        assert hotspot_fraction > 0.7

    def test_non_edge_hotspot_nodes_rejected(self, edge_cloud_network, catalog, templates):
        non_edge = [
            n
            for n in edge_cloud_network.node_ids
            if n not in edge_cloud_network.edge_node_ids
        ]
        assert non_edge, "fixture network needs at least one non-edge node"
        with pytest.raises(ValueError, match="not edge nodes"):
            RequestGenerator(
                edge_cloud_network,
                catalog,
                templates,
                WorkloadConfig(
                    hotspot_fraction=0.5,
                    hotspot_nodes=(edge_cloud_network.edge_node_ids[0], non_edge[0]),
                ),
            )

    def test_inactive_non_edge_hotspots_warn_only(
        self, edge_cloud_network, catalog, templates
    ):
        non_edge = [
            n
            for n in edge_cloud_network.node_ids
            if n not in edge_cloud_network.edge_node_ids
        ]
        with pytest.warns(UserWarning, match="inert"):
            generator = RequestGenerator(
                edge_cloud_network,
                catalog,
                templates,
                WorkloadConfig(hotspot_fraction=0.0, hotspot_nodes=(non_edge[0],)),
            )
        # the inert set never influences ingress
        assert generator.sample_source_node() in edge_cloud_network.edge_node_ids

    def test_hotspot_fraction_without_hotspots_rejected(
        self, edge_cloud_network, catalog, templates
    ):
        with pytest.raises(ValueError, match="empty hotspot_nodes"):
            RequestGenerator(
                edge_cloud_network,
                catalog,
                templates,
                WorkloadConfig(hotspot_fraction=0.4, hotspot_nodes=()),
            )

    def test_sla_scale_stretches_budgets(self, edge_cloud_network, catalog, templates):
        tight = RequestGenerator(
            edge_cloud_network, catalog, templates,
            WorkloadConfig(arrival_rate=1.0, sla_scale=0.5, seed=3),
        )
        loose = RequestGenerator(
            edge_cloud_network, catalog, templates,
            WorkloadConfig(arrival_rate=1.0, sla_scale=2.0, seed=3),
        )
        tight_mean = sum(tight.sample_request().sla.max_latency_ms for _ in range(100)) / 100
        loose_mean = sum(loose.sample_request().sla.max_latency_ms for _ in range(100)) / 100
        assert loose_mean > 2.5 * tight_mean

    def test_deterministic_with_seed(self, edge_cloud_network, catalog, templates):
        def build():
            return RequestGenerator(
                edge_cloud_network, catalog, templates,
                WorkloadConfig(arrival_rate=0.5, horizon=50.0, seed=7),
            ).generate_trace()

        first, second = build(), build()
        assert [r.bandwidth_mbps for r in first] == [r.bandwidth_mbps for r in second]
        assert [r.source_node_id for r in first] == [r.source_node_id for r in second]

    def test_network_without_edges_rejected(self, catalog, templates):
        from repro.substrate.network import SubstrateNetwork
        from repro.substrate.node import make_cloud_node
        from repro.substrate.geo import GeoPoint

        network = SubstrateNetwork()
        network.add_node(make_cloud_node(0, GeoPoint(0, 0)))
        with pytest.raises(ValueError):
            RequestGenerator(network, catalog, templates, WorkloadConfig(arrival_rate=1.0))


class TestScenarios:
    def test_reference_scenario_builds(self):
        scenario = reference_scenario(arrival_rate=0.5, num_edge_nodes=6, horizon=100.0, seed=1)
        network = scenario.build_network()
        assert len(network.edge_node_ids) == 6
        requests = scenario.generate_requests()
        assert len(requests) > 0

    def test_reference_scenario_topology_reproducible(self):
        scenario = reference_scenario(seed=4, num_edge_nodes=6)
        a, b = scenario.build_network(), scenario.build_network()
        assert [n.capacity.as_tuple() for n in a.nodes()] == [
            n.capacity.as_tuple() for n in b.nodes()
        ]

    def test_with_arrival_rate_copy(self):
        scenario = reference_scenario(arrival_rate=0.5, num_edge_nodes=6)
        faster = scenario.with_arrival_rate(2.0)
        assert faster.workload_config.arrival_rate == 2.0
        assert scenario.workload_config.arrival_rate == 0.5

    def test_with_sla_scale_copy(self):
        scenario = reference_scenario(num_edge_nodes=6)
        strict = scenario.with_sla_scale(0.5)
        assert strict.workload_config.sla_scale == 0.5

    def test_scalability_scenario_load_scales_with_size(self):
        small = scalability_scenario(8, arrival_rate_per_node=0.05)
        large = scalability_scenario(24, arrival_rate_per_node=0.05)
        assert large.workload_config.arrival_rate == pytest.approx(
            3 * small.workload_config.arrival_rate
        )
        assert len(large.build_network().edge_node_ids) == 24

    def test_hotspot_scenario_sets_hotspots(self):
        scenario = hotspot_scenario(num_edge_nodes=8, seed=2)
        assert scenario.workload_config.hotspot_fraction > 0
        assert len(scenario.workload_config.hotspot_nodes) >= 1

    def test_diurnal_scenario_kind(self):
        scenario = diurnal_scenario(num_edge_nodes=6)
        assert scenario.arrival_kind == "diurnal"
        process = scenario.build_arrival_process()
        assert process.mean_rate() > 0

    def test_unknown_arrival_kind_rejected(self):
        from dataclasses import replace

        scenario = replace(reference_scenario(num_edge_nodes=6), arrival_kind="weibull")
        with pytest.raises(ValueError):
            scenario.build_arrival_process()
