"""Unit tests for substrate links."""

import pytest

from repro.substrate.link import (
    InsufficientBandwidthError,
    Link,
    UnknownReservationError,
    canonical_endpoints,
)


@pytest.fixture
def link():
    return Link(endpoints=(2, 1), bandwidth_capacity=100.0, latency_ms=3.0)


class TestCanonicalEndpoints:
    def test_orders_pair(self):
        assert canonical_endpoints(5, 2) == (2, 5)
        assert canonical_endpoints(2, 5) == (2, 5)

    def test_self_loop_rejected(self):
        with pytest.raises(ValueError):
            canonical_endpoints(3, 3)


class TestConstruction:
    def test_endpoints_canonicalized(self, link):
        assert link.endpoints == (1, 2)

    def test_invalid_capacity_rejected(self):
        with pytest.raises(ValueError):
            Link(endpoints=(0, 1), bandwidth_capacity=0.0, latency_ms=1.0)

    def test_negative_latency_rejected(self):
        with pytest.raises(ValueError):
            Link(endpoints=(0, 1), bandwidth_capacity=10.0, latency_ms=-1.0)


class TestReservations:
    def test_reserve_and_release(self, link):
        link.reserve("flow", 40.0)
        assert link.used_bandwidth == 40.0
        assert link.available_bandwidth == pytest.approx(60.0)
        assert link.utilization == pytest.approx(0.4)
        assert link.release("flow") == 40.0
        assert link.used_bandwidth == 0.0

    def test_reserve_over_capacity_rejected(self, link):
        link.reserve("a", 80.0)
        with pytest.raises(InsufficientBandwidthError):
            link.reserve("b", 30.0)
        # The failed reservation must not consume bandwidth.
        assert link.used_bandwidth == 80.0

    def test_duplicate_handle_rejected(self, link):
        link.reserve("a", 10.0)
        with pytest.raises(ValueError):
            link.reserve("a", 10.0)

    def test_release_unknown_handle(self, link):
        with pytest.raises(UnknownReservationError):
            link.release("nope")

    def test_can_carry_boundary(self, link):
        link.reserve("a", 60.0)
        assert link.can_carry(40.0)
        assert not link.can_carry(40.1)

    def test_zero_bandwidth_reservation_allowed(self, link):
        link.reserve("zero", 0.0)
        assert link.used_bandwidth == 0.0
        assert link.holds("zero")

    def test_reset(self, link):
        link.reserve("a", 10.0)
        link.reset()
        assert link.used_bandwidth == 0.0
        assert not link.holds("a")


class TestCost:
    def test_transport_cost(self, link):
        assert link.transport_cost(100.0, 10.0) == pytest.approx(
            100.0 * 10.0 * link.cost_per_mbps
        )

    def test_usage_cost_rate(self, link):
        link.reserve("a", 50.0)
        assert link.usage_cost_rate() == pytest.approx(50.0 * link.cost_per_mbps)

    def test_snapshot(self, link):
        link.reserve("a", 25.0)
        snapshot = link.snapshot()
        assert snapshot["endpoints"] == [1, 2]
        assert snapshot["used_bandwidth"] == 25.0
        assert snapshot["reservations"] == 1
