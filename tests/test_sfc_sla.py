"""Unit tests for service chains, requests and SLAs."""

import pytest

from repro.nfv.catalog import default_catalog, default_chain_templates
from repro.nfv.sfc import SFCRequest, ServiceFunctionChain, chain_summary
from repro.nfv.sla import (
    DEFAULT_NODE_AVAILABILITY,
    ServiceLevelAgreement,
    placement_availability,
)
from tests.conftest import build_request


class TestServiceFunctionChain:
    def test_from_template(self):
        catalog = default_catalog()
        template = default_chain_templates()[0]
        chain = ServiceFunctionChain.from_template(template, catalog, bandwidth_mbps=50.0)
        assert chain.vnf_names == template.vnf_sequence
        assert chain.service_class == template.name
        assert chain.length == len(template.vnf_sequence)

    def test_total_processing_delay(self):
        catalog = default_catalog()
        chain = ServiceFunctionChain(
            vnf_types=(catalog.get("firewall"), catalog.get("nat")),
            bandwidth_mbps=10.0,
        )
        expected = (
            catalog.get("firewall").processing_delay_ms
            + catalog.get("nat").processing_delay_ms
        )
        assert chain.total_processing_delay_ms() == pytest.approx(expected)

    def test_total_base_demand_aggregates(self):
        catalog = default_catalog()
        chain = ServiceFunctionChain(
            vnf_types=(catalog.get("firewall"), catalog.get("firewall")),
            bandwidth_mbps=10.0,
        )
        single = catalog.get("firewall").demand_for(10.0)
        assert chain.total_base_demand().cpu == pytest.approx(2 * single.cpu)

    def test_empty_chain_rejected(self):
        with pytest.raises(ValueError):
            ServiceFunctionChain(vnf_types=(), bandwidth_mbps=10.0)

    def test_zero_bandwidth_rejected(self):
        catalog = default_catalog()
        with pytest.raises(ValueError):
            ServiceFunctionChain(vnf_types=(catalog.get("nat"),), bandwidth_mbps=0.0)


class TestSFCRequest:
    def test_departure_time(self, catalog):
        request = build_request(catalog, arrival=5.0, holding=25.0)
        assert request.departure_time == pytest.approx(30.0)

    def test_request_ids_increment(self, catalog):
        first = build_request(catalog)
        second = build_request(catalog)
        assert second.request_id == first.request_id + 1

    def test_revenue_scales_with_bandwidth_and_holding(self, catalog):
        small = build_request(catalog, bandwidth=10.0, holding=10.0)
        large = build_request(catalog, bandwidth=100.0, holding=10.0)
        assert large.revenue() == pytest.approx(10 * small.revenue())

    def test_snapshot_fields(self, catalog):
        request = build_request(catalog)
        snapshot = request.snapshot()
        assert snapshot["vnfs"] == ["firewall", "nat"]
        assert snapshot["sla"]["max_latency_ms"] == 60.0

    def test_chain_summary(self, catalog):
        requests = [build_request(catalog) for _ in range(3)]
        assert chain_summary(requests) == {"test": 3}

    def test_invalid_holding_time_rejected(self, catalog):
        with pytest.raises(ValueError):
            build_request(catalog, holding=0.0)


class TestSLA:
    def test_latency_satisfaction(self):
        sla = ServiceLevelAgreement(max_latency_ms=20.0)
        assert sla.latency_satisfied(20.0)
        assert sla.latency_satisfied(19.9)
        assert not sla.latency_satisfied(20.1)

    def test_headroom_and_fraction(self):
        sla = ServiceLevelAgreement(max_latency_ms=40.0)
        assert sla.latency_headroom_ms(30.0) == pytest.approx(10.0)
        assert sla.latency_fraction_used(30.0) == pytest.approx(0.75)
        assert sla.latency_headroom_ms(50.0) < 0

    def test_availability_term(self):
        sla = ServiceLevelAgreement(max_latency_ms=40.0, min_availability=0.99)
        assert sla.is_satisfied(latency_ms=10.0, availability=0.995)
        assert not sla.is_satisfied(latency_ms=10.0, availability=0.98)

    def test_invalid_latency_budget_rejected(self):
        with pytest.raises(ValueError):
            ServiceLevelAgreement(max_latency_ms=0.0)

    def test_placement_availability_decreases_with_more_nodes(self):
        one = placement_availability({0: "edge"})
        two = placement_availability({0: "edge", 1: "edge"})
        assert two < one
        assert one == pytest.approx(DEFAULT_NODE_AVAILABILITY["edge"])

    def test_cloud_availability_higher_than_edge(self):
        assert placement_availability({0: "cloud"}) > placement_availability({0: "edge"})
