"""Unit tests for the topology generators."""

import pytest

from repro.substrate.node import NodeTier
from repro.substrate.topology import (
    TopologyConfig,
    linear_chain_topology,
    metro_edge_cloud_topology,
    random_geometric_topology,
    scaled_topology,
    star_topology,
    waxman_topology,
)


class TestMetroEdgeCloud:
    def test_default_counts(self):
        network = metro_edge_cloud_topology(TopologyConfig(seed=1))
        assert len(network.edge_node_ids) == 16
        assert len(network.cloud_node_ids) == 1
        assert network.is_connected()

    def test_custom_counts(self):
        config = TopologyConfig(num_edge_nodes=10, num_cloud_nodes=2, num_metros=2, seed=2)
        network = metro_edge_cloud_topology(config)
        assert len(network.edge_node_ids) == 10
        assert len(network.cloud_node_ids) == 2

    def test_deterministic_with_seed(self):
        a = metro_edge_cloud_topology(TopologyConfig(seed=5))
        b = metro_edge_cloud_topology(TopologyConfig(seed=5))
        assert a.num_links == b.num_links
        assert [n.capacity.as_tuple() for n in a.nodes()] == [
            n.capacity.as_tuple() for n in b.nodes()
        ]

    def test_different_seeds_differ(self):
        a = metro_edge_cloud_topology(TopologyConfig(seed=1))
        b = metro_edge_cloud_topology(TopologyConfig(seed=2))
        assert [n.capacity.as_tuple() for n in a.nodes()] != [
            n.capacity.as_tuple() for n in b.nodes()
        ]

    def test_cloud_farther_than_intra_metro(self):
        network = metro_edge_cloud_topology(TopologyConfig(seed=3))
        cloud = network.cloud_node_ids[0]
        edges = network.edge_node_ids
        intra = network.latency_between(edges[0], edges[4])  # same metro ring
        to_cloud = network.latency_between(edges[0], cloud)
        assert to_cloud > intra

    def test_wan_extra_latency_applied(self):
        low = metro_edge_cloud_topology(TopologyConfig(seed=4, wan_extra_latency_ms=0.0))
        high = metro_edge_cloud_topology(TopologyConfig(seed=4, wan_extra_latency_ms=30.0))
        cloud_low = low.cloud_node_ids[0]
        cloud_high = high.cloud_node_ids[0]
        assert high.latency_between(0, cloud_high) > low.latency_between(0, cloud_low)

    def test_too_many_metros_rejected(self):
        with pytest.raises(ValueError):
            TopologyConfig(num_metros=10, cities=("new_york",))


class TestOtherGenerators:
    def test_random_geometric_connected(self):
        network = random_geometric_topology(num_edge_nodes=12, seed=3)
        assert network.is_connected()
        assert len(network.edge_node_ids) == 12
        assert len(network.cloud_node_ids) == 1

    def test_waxman_connected(self):
        network = waxman_topology(num_edge_nodes=12, seed=4)
        assert network.is_connected()
        assert len(network.edge_node_ids) == 12

    def test_linear_chain_structure(self):
        network = linear_chain_topology(num_edge_nodes=5, link_latency_ms=2.0)
        assert network.num_links == 4
        assert network.latency_between(0, 4) == pytest.approx(8.0)

    def test_star_structure(self):
        network = star_topology(num_leaves=6, link_latency_ms=1.5)
        assert network.num_nodes == 7
        assert network.num_links == 6
        # Leaf-to-leaf goes through the hub: two hops.
        assert network.latency_between(1, 2) == pytest.approx(3.0)

    def test_scaled_topology_sizes(self):
        for size in (4, 8, 24):
            network = scaled_topology(size, seed=1)
            assert len(network.edge_node_ids) == size
            assert network.is_connected()

    def test_all_generators_have_edge_tier_nodes(self):
        for network in (
            random_geometric_topology(num_edge_nodes=6, seed=1),
            waxman_topology(num_edge_nodes=6, seed=1),
            linear_chain_topology(4),
            star_topology(4),
        ):
            assert all(network.node(n).tier is NodeTier.EDGE for n in network.edge_node_ids)
