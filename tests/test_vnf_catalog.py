"""Unit tests for VNF types and the catalog."""

import pytest

from repro.nfv.catalog import (
    ChainTemplate,
    UnknownVNFTypeError,
    VNFCatalog,
    default_catalog,
    default_chain_templates,
    validate_templates,
)
from repro.nfv.vnf import VNFInstance, VNFType, make_vnf_type
from repro.substrate.resources import ResourceVector


class TestVNFType:
    def test_demand_for_scales_with_bandwidth(self):
        vnf = make_vnf_type("fw", cpu=2.0, memory=2.0, cpu_per_mbps=0.01)
        low = vnf.demand_for(10.0)
        high = vnf.demand_for(100.0)
        assert high.cpu > low.cpu
        assert high.memory == low.memory  # no per-mbps memory term configured

    def test_demand_for_zero_bandwidth_is_base(self):
        vnf = make_vnf_type("fw", cpu=2.0, memory=3.0, cpu_per_mbps=0.01)
        assert vnf.demand_for(0.0) == vnf.base_demand

    def test_negative_bandwidth_rejected(self):
        vnf = make_vnf_type("fw", cpu=1.0, memory=1.0)
        with pytest.raises(ValueError):
            vnf.demand_for(-1.0)

    def test_empty_name_rejected(self):
        with pytest.raises(ValueError):
            VNFType(name="", base_demand=ResourceVector(1, 1, 1))

    def test_str_is_name(self):
        assert str(make_vnf_type("ids", cpu=1, memory=1)) == "ids"


class TestVNFInstance:
    def test_instance_ids_unique(self):
        vnf = make_vnf_type("fw", cpu=1.0, memory=1.0)
        a = VNFInstance(vnf_type=vnf, node_id=0, bandwidth_mbps=10.0)
        b = VNFInstance(vnf_type=vnf, node_id=0, bandwidth_mbps=10.0)
        assert a.instance_id != b.instance_id
        assert a.allocation_handle != b.allocation_handle

    def test_instance_demand_and_delay(self):
        vnf = make_vnf_type("fw", cpu=1.0, memory=1.0, cpu_per_mbps=0.1, processing_delay_ms=0.7)
        instance = VNFInstance(vnf_type=vnf, node_id=3, bandwidth_mbps=10.0)
        assert instance.demand.cpu == pytest.approx(2.0)
        assert instance.processing_delay_ms == 0.7
        assert instance.snapshot()["node_id"] == 3


class TestCatalog:
    def test_default_catalog_contents(self):
        catalog = default_catalog()
        assert len(catalog) == 7
        for name in ("firewall", "nat", "ids", "load_balancer", "transcoder"):
            assert name in catalog

    def test_get_unknown_raises(self):
        with pytest.raises(UnknownVNFTypeError):
            default_catalog().get("quantum_router")

    def test_duplicate_registration_rejected(self):
        catalog = default_catalog()
        with pytest.raises(ValueError):
            catalog.register(make_vnf_type("firewall", cpu=1, memory=1))

    def test_index_of_is_stable(self):
        catalog = default_catalog()
        names = catalog.names
        for index, name in enumerate(names):
            assert catalog.index_of(name) == index

    def test_index_of_unknown_raises(self):
        with pytest.raises(UnknownVNFTypeError):
            default_catalog().index_of("nope")


class TestChainTemplates:
    def test_default_templates_reference_known_vnfs(self):
        validate_templates(default_chain_templates(), default_catalog())

    def test_default_templates_cover_latency_spectrum(self):
        templates = default_chain_templates()
        slas = [t.latency_sla_range_ms for t in templates]
        tightest = min(hi for _, hi in slas)
        loosest = max(hi for _, hi in slas)
        assert tightest < 40.0 < loosest

    def test_template_weights_positive(self):
        assert all(t.weight > 0 for t in default_chain_templates())

    def test_empty_chain_rejected(self):
        with pytest.raises(ValueError):
            ChainTemplate(
                name="bad",
                vnf_sequence=(),
                bandwidth_range=(1.0, 2.0),
                latency_sla_range_ms=(10.0, 20.0),
                mean_holding_time=10.0,
            )

    def test_invalid_bandwidth_range_rejected(self):
        with pytest.raises(ValueError):
            ChainTemplate(
                name="bad",
                vnf_sequence=("firewall",),
                bandwidth_range=(5.0, 2.0),
                latency_sla_range_ms=(10.0, 20.0),
                mean_holding_time=10.0,
            )

    def test_validate_templates_catches_unknown_vnf(self):
        template = ChainTemplate(
            name="bad",
            vnf_sequence=("does_not_exist",),
            bandwidth_range=(1.0, 2.0),
            latency_sla_range_ms=(10.0, 20.0),
            mean_holding_time=10.0,
        )
        with pytest.raises(UnknownVNFTypeError):
            validate_templates([template], default_catalog())

    def test_template_length(self):
        template = default_chain_templates()[0]
        assert template.length == len(template.vnf_sequence)
