"""Property-based tests (hypothesis) on core data structures and invariants."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.nfv.sla import ServiceLevelAgreement
from repro.nn.activations import softmax
from repro.nn.losses import HuberLoss, MSELoss
from repro.nn.network import MLP
from repro.sim.arrivals import PoissonProcess
from repro.substrate.link import Link
from repro.substrate.geo import GeoPoint, haversine_km
from repro.substrate.node import ComputeNode
from repro.substrate.resources import ResourceVector

# Strategy helpers -----------------------------------------------------------

finite_resource = st.floats(min_value=0.0, max_value=1e6, allow_nan=False, allow_infinity=False)
resource_vectors = st.builds(ResourceVector, finite_resource, finite_resource, finite_resource)
latitudes = st.floats(min_value=-89.0, max_value=89.0, allow_nan=False)
longitudes = st.floats(min_value=-179.0, max_value=179.0, allow_nan=False)
geo_points = st.builds(GeoPoint, latitudes, longitudes)


class TestResourceVectorProperties:
    @given(resource_vectors, resource_vectors)
    def test_addition_commutative(self, a, b):
        assert (a + b).almost_equal(b + a, tol=1e-6)

    @given(resource_vectors, resource_vectors, resource_vectors)
    def test_addition_associative(self, a, b, c):
        assert ((a + b) + c).almost_equal(a + (b + c), tol=1e-3)

    @given(resource_vectors)
    def test_zero_is_identity(self, a):
        assert (a + ResourceVector.zero()) == a

    @given(resource_vectors, resource_vectors)
    def test_subtraction_never_negative(self, a, b):
        result = a - b
        assert result.cpu >= 0 and result.memory >= 0 and result.storage >= 0

    @given(resource_vectors, resource_vectors)
    def test_fits_within_consistent_with_deficit(self, a, b):
        assert a.fits_within(b) == a.deficit_against(b).is_zero(tol=1e-9)

    @given(resource_vectors, st.floats(min_value=0.0, max_value=1e3, allow_nan=False))
    def test_scaling_preserves_order(self, a, factor):
        scaled = a * factor
        assert scaled.total() == pytest.approx(a.total() * factor, rel=1e-9, abs=1e-6)


class TestGeoProperties:
    @given(geo_points, geo_points)
    def test_distance_symmetric_and_nonnegative(self, a, b):
        assert haversine_km(a, b) >= 0.0
        assert haversine_km(a, b) == pytest.approx(haversine_km(b, a), rel=1e-9, abs=1e-9)

    @given(geo_points)
    def test_distance_to_self_zero(self, point):
        assert haversine_km(point, point) == pytest.approx(0.0, abs=1e-6)

    @given(geo_points, geo_points, geo_points)
    @settings(max_examples=50)
    def test_triangle_inequality(self, a, b, c):
        assert haversine_km(a, c) <= haversine_km(a, b) + haversine_km(b, c) + 1e-6


class TestNodeAllocationProperties:
    @given(
        st.lists(
            st.tuples(
                st.floats(min_value=0.0, max_value=5.0, allow_nan=False),
                st.floats(min_value=0.0, max_value=5.0, allow_nan=False),
            ),
            min_size=1,
            max_size=20,
        )
    )
    def test_allocate_release_conserves_capacity(self, demands):
        node = ComputeNode(0, GeoPoint(0, 0), ResourceVector(1000, 1000, 1000))
        handles = []
        for index, (cpu, memory) in enumerate(demands):
            handle = f"h{index}"
            node.allocate(handle, ResourceVector(cpu, memory, 0.0))
            handles.append(handle)
        for handle in handles:
            node.release(handle)
        assert node.used.is_zero(tol=1e-6)
        assert node.available.almost_equal(node.capacity, tol=1e-6)

    @given(st.floats(min_value=0.0, max_value=100.0, allow_nan=False))
    def test_can_host_iff_allocate_succeeds(self, cpu):
        node = ComputeNode(0, GeoPoint(0, 0), ResourceVector(50, 50, 50))
        demand = ResourceVector(cpu, 0, 0)
        if node.can_host(demand):
            node.allocate("x", demand)
            assert node.holds("x")
        else:
            with pytest.raises(Exception):
                node.allocate("x", demand)


class TestLinkProperties:
    @given(
        st.lists(st.floats(min_value=0.0, max_value=30.0, allow_nan=False), min_size=1, max_size=15)
    )
    def test_reservations_never_exceed_capacity(self, bandwidths):
        link = Link(endpoints=(0, 1), bandwidth_capacity=100.0, latency_ms=1.0)
        for index, bandwidth in enumerate(bandwidths):
            if link.can_carry(bandwidth):
                link.reserve(f"r{index}", bandwidth)
        assert link.used_bandwidth <= link.bandwidth_capacity + 1e-6
        assert link.available_bandwidth >= -1e-6


class TestSLAProperties:
    @given(
        st.floats(min_value=0.1, max_value=1000.0, allow_nan=False),
        st.floats(min_value=0.0, max_value=2000.0, allow_nan=False),
    )
    def test_satisfaction_consistent_with_headroom(self, budget, latency):
        sla = ServiceLevelAgreement(max_latency_ms=budget)
        assert sla.latency_satisfied(latency) == (sla.latency_headroom_ms(latency) >= -1e-9)


class TestNNProperties:
    @given(st.lists(st.floats(min_value=-50, max_value=50, allow_nan=False), min_size=2, max_size=10))
    def test_softmax_is_distribution(self, logits):
        probabilities = softmax(np.array(logits))
        assert probabilities.sum() == pytest.approx(1.0, rel=1e-6)
        assert np.all(probabilities >= 0)

    @given(
        st.lists(st.floats(min_value=-10, max_value=10, allow_nan=False), min_size=3, max_size=3),
        st.lists(st.floats(min_value=-10, max_value=10, allow_nan=False), min_size=3, max_size=3),
    )
    def test_losses_nonnegative_and_zero_at_target(self, predictions, targets):
        predictions = np.array([predictions])
        targets = np.array([targets])
        for loss in (MSELoss(), HuberLoss()):
            assert loss(predictions, targets) >= 0.0
            assert loss(targets, targets) == pytest.approx(0.0, abs=1e-12)

    @given(st.integers(min_value=1, max_value=5), st.integers(min_value=1, max_value=6))
    @settings(max_examples=20, deadline=None)
    def test_mlp_output_shape(self, batch, width):
        network = MLP([width, 8, 3], seed=0)
        out = network.predict(np.zeros((batch, width)))
        assert out.shape == (batch, 3)
        assert np.all(np.isfinite(out))


class TestArrivalProperties:
    @given(st.floats(min_value=0.1, max_value=5.0, allow_nan=False), st.integers(min_value=0, max_value=10_000))
    @settings(max_examples=25, deadline=None)
    def test_poisson_arrivals_sorted_within_horizon(self, rate, seed):
        times = PoissonProcess(rate, seed=seed).arrivals_until(50.0)
        assert all(0 < t <= 50.0 for t in times)
        assert times == sorted(times)
