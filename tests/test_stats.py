"""Tests for multi-seed replication statistics."""

import numpy as np
import pytest

from repro.experiments.stats import (
    MetricSummary,
    compare_policies,
    replicate,
    summarize_metric,
    summarize_replications,
)


class TestSummarizeMetric:
    def test_single_sample_degenerate_interval(self):
        summary = summarize_metric([2.5])
        assert summary.mean == summary.ci_low == summary.ci_high == 2.5
        assert summary.std == 0.0
        assert summary.samples == 1

    def test_mean_and_interval_cover_true_mean(self):
        rng = np.random.default_rng(0)
        values = rng.normal(10.0, 1.0, size=50)
        summary = summarize_metric(values)
        assert summary.ci_low < 10.0 < summary.ci_high
        assert summary.mean == pytest.approx(float(values.mean()))
        assert summary.samples == 50

    def test_wider_interval_with_fewer_samples(self):
        rng = np.random.default_rng(1)
        values = rng.normal(0.0, 1.0, size=100)
        narrow = summarize_metric(values)
        wide = summarize_metric(values[:5])
        assert (wide.ci_high - wide.ci_low) > (narrow.ci_high - narrow.ci_low)

    def test_invalid_inputs(self):
        with pytest.raises(ValueError):
            summarize_metric([])
        with pytest.raises(ValueError):
            summarize_metric([1.0, 2.0], confidence=1.5)

    def test_as_dict(self):
        data = summarize_metric([1.0, 2.0, 3.0]).as_dict()
        assert set(data) == {"mean", "std", "ci_low", "ci_high", "samples"}


class TestReplicate:
    def test_collects_per_seed_metrics(self):
        def experiment(seed):
            return {"acceptance": 0.5 + 0.01 * seed, "label": "ignored", "count": 3}

        results = replicate(experiment, seeds=[1, 2, 3])
        assert len(results) == 3
        assert results[0]["acceptance"] == pytest.approx(0.51)
        assert all("label" not in r for r in results)
        assert all(r["count"] == 3.0 for r in results)

    def test_empty_seed_list_rejected(self):
        with pytest.raises(ValueError):
            replicate(lambda seed: {}, seeds=[])


class TestSummarizeReplications:
    def test_per_metric_summaries(self):
        replications = [
            {"acceptance": 0.8, "latency": 20.0},
            {"acceptance": 0.9, "latency": 22.0},
            {"acceptance": 0.85, "latency": 21.0},
        ]
        summaries = summarize_replications(replications)
        assert isinstance(summaries["acceptance"], MetricSummary)
        assert summaries["acceptance"].mean == pytest.approx(0.85)
        assert summaries["latency"].mean == pytest.approx(21.0)

    def test_missing_metrics_tolerated(self):
        summaries = summarize_replications([{"a": 1.0}, {"a": 2.0, "b": 5.0}])
        assert summaries["a"].samples == 2
        assert summaries["b"].samples == 1

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            summarize_replications([])


class TestComparePolicies:
    def test_clear_winner_is_significant(self):
        rng = np.random.default_rng(2)
        strong = [{"acceptance": v} for v in rng.normal(0.9, 0.01, size=10)]
        weak = [{"acceptance": v} for v in rng.normal(0.5, 0.01, size=10)]
        rows = compare_policies({"strong": strong, "weak": weak}, "acceptance")
        assert len(rows) == 1
        row = rows[0]
        assert row["mean_difference"] > 0.3
        assert row["significant"] is True

    def test_identical_policies_not_significant(self):
        rng = np.random.default_rng(3)
        a = [{"acceptance": v} for v in rng.normal(0.7, 0.05, size=10)]
        b = [{"acceptance": v} for v in rng.normal(0.7, 0.05, size=10)]
        rows = compare_policies({"a": a, "b": b}, "acceptance")
        assert rows[0]["significant"] is False

    def test_single_sample_yields_infinite_interval(self):
        rows = compare_policies(
            {"a": [{"m": 1.0}], "b": [{"m": 2.0}]}, "m"
        )
        assert rows[0]["significant"] is False
        assert rows[0]["ci_low"] == -np.inf

    def test_pair_count(self):
        data = {name: [{"m": 1.0}, {"m": 2.0}] for name in ("a", "b", "c")}
        rows = compare_policies(data, "m")
        assert len(rows) == 3
