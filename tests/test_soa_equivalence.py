"""Differential equivalence suite: SoA core vs per-lane reference backend.

Uses the shared harness in ``tests/differential.py`` to drive both backends
through randomized seeded campaigns (scenario shape, workload intensity,
fault injection) and assert **bitwise** equality on every observable:
states, masks, rewards, dones, infos, running episode statistics and
fenced-node sets.  Also covers the K boundaries (K=1, K = subprocess shard
size, K=256), mid-episode ``reset_lane``, worker-sharded SoA lane-blocks,
and the stale-fence-row regression.
"""

from dataclasses import replace as dataclass_replace

import numpy as np
import pytest

from differential import (
    PROCESS_LOCAL_INFO_KEYS,
    Campaign,
    assert_lean_matches_full,
    assert_trajectories_equal,
    campaign_from_seed,
    drive,
    masked_random_actions,
)
from repro.core.env import EnvConfig
from repro.core.soa import SoAVecPlacementEnv, soa_supported
from repro.core.subproc import (
    SubprocVecPlacementEnv,
    make_vec_env,
    subproc_available,
)
from repro.core.vecenv import VecPlacementEnv, lane_specs_from_scenarios
from repro.sim.failures import FailureConfig
from repro.workloads.scenarios import reference_scenario

#: The ISSUE acceptance bar: at least 50 randomized seeded campaigns, with
#: fault-injection lanes included (even seeds inject failures).
CAMPAIGN_SEEDS = tuple(range(50))

needs_fork = pytest.mark.skipif(
    not subproc_available(), reason="platform lacks the fork start method"
)


def reference_factory(campaign: Campaign):
    return lambda: VecPlacementEnv.from_scenario(
        campaign.scenario(),
        campaign.num_lanes,
        seed=campaign.seed,
        env_config=campaign.env_config(),
        failure_config=campaign.failure_config,
    )


def soa_factory(campaign: Campaign):
    return lambda: SoAVecPlacementEnv.from_scenario(
        campaign.scenario(),
        campaign.num_lanes,
        seed=campaign.seed,
        env_config=campaign.env_config(),
        failure_config=campaign.failure_config,
    )


def subproc_factory(campaign: Campaign, backend: str, num_workers: int = 2):
    return lambda: SubprocVecPlacementEnv.from_scenario(
        campaign.scenario(),
        campaign.num_lanes,
        seed=campaign.seed,
        env_config=campaign.env_config(),
        failure_config=campaign.failure_config,
        num_workers=num_workers,
        backend=backend,
    )


class TestRandomizedCampaigns:
    """The headline deliverable: seeded scenario/workload/fault campaigns."""

    @pytest.mark.parametrize("campaign_seed", CAMPAIGN_SEEDS)
    def test_soa_matches_reference_bitwise(self, campaign_seed):
        campaign = campaign_from_seed(campaign_seed)
        action_seed = campaign_seed + 1000
        reference = drive(
            reference_factory(campaign), campaign.steps, action_seed=action_seed
        )
        soa = drive(soa_factory(campaign), campaign.steps, action_seed=action_seed)
        assert_trajectories_equal(reference, soa)

    def test_campaign_mix_is_diverse(self):
        campaigns = [campaign_from_seed(seed) for seed in CAMPAIGN_SEEDS]
        assert sum(campaign.faulted for campaign in campaigns) == 25
        assert {campaign.num_lanes for campaign in campaigns} == {1, 2, 3, 4}
        assert len(campaigns) >= 50

    def test_campaigns_actually_fence_nodes(self):
        """At least one campaign drives a lane into a fenced-node state."""
        fenced = 0
        for seed in CAMPAIGN_SEEDS:
            campaign = campaign_from_seed(seed)
            if not campaign.faulted:
                continue
            record = drive(
                soa_factory(campaign), campaign.steps, action_seed=seed + 1000
            )
            fenced += any(
                any(entry.get("failed_nodes", [[]]))
                for entry in record["steps"]
                if "failed_nodes" in entry
            )
            if fenced:
                return
        pytest.fail("no fault campaign ever fenced a node; widen the ranges")


class TestLeanStepProtocol:
    """Lean-step drives (``info=False`` / ``observe=False``) vs the full path.

    The lean protocol must be a pure *reporting* change: skipping info dicts
    (and observation encoding) must leave the underlying trajectory —
    rewards, dones, outcome codes, request ids, terminal episode stats,
    running stats, fenced nodes — bitwise identical to a full-protocol run
    with the same seeds.  Covered across both sync backends, the subprocess
    wrapper with both worker backends, and fault-injected campaigns (even
    seeds inject failures).
    """

    #: Mix of faulted (even) and clean (odd) campaigns, 1-4 lanes.
    LEAN_SEEDS = tuple(range(12))

    @pytest.mark.parametrize("campaign_seed", LEAN_SEEDS)
    @pytest.mark.parametrize("backend", ["reference", "soa"])
    def test_lean_info_matches_full(self, campaign_seed, backend):
        campaign = campaign_from_seed(campaign_seed)
        factory = (
            reference_factory if backend == "reference" else soa_factory
        )(campaign)
        action_seed = campaign_seed + 1000
        full = drive(factory, campaign.steps, action_seed=action_seed)
        lean = drive(
            factory, campaign.steps, action_seed=action_seed, info=False
        )
        assert_lean_matches_full(lean, full)

    @pytest.mark.parametrize("campaign_seed", (0, 1, 2, 3))
    @pytest.mark.parametrize("backend", ["reference", "soa"])
    def test_lean_observe_and_info_matches_full(self, campaign_seed, backend):
        """The leanest step — no observations, no infos — still matches."""
        campaign = campaign_from_seed(campaign_seed)
        factory = (
            reference_factory if backend == "reference" else soa_factory
        )(campaign)
        action_seed = campaign_seed + 1000
        full = drive(factory, campaign.steps, action_seed=action_seed)
        lean = drive(
            factory,
            campaign.steps,
            action_seed=action_seed,
            observe=False,
            info=False,
        )
        assert_lean_matches_full(lean, full)

    @pytest.mark.parametrize("campaign_seed", (0, 1, 4, 5, 8, 9))
    def test_lean_soa_matches_lean_reference(self, campaign_seed):
        """Cross-backend differential stays bitwise-equal on lean drives."""
        campaign = campaign_from_seed(campaign_seed)
        action_seed = campaign_seed + 1000
        reference = drive(
            reference_factory(campaign),
            campaign.steps,
            action_seed=action_seed,
            info=False,
        )
        soa = drive(
            soa_factory(campaign),
            campaign.steps,
            action_seed=action_seed,
            info=False,
        )
        assert_trajectories_equal(reference, soa)

    @needs_fork
    @pytest.mark.parametrize("campaign_seed", (2, 5))
    @pytest.mark.parametrize("backend", ["reference", "soa"])
    def test_lean_subproc_matches_lean_sync(self, campaign_seed, backend):
        """Workers skip info marshaling entirely, yet shards stay equal.

        ``request_id`` is excluded (per-process counters, see
        PROCESS_LOCAL_INFO_KEYS); the harness then also skips the lean
        ``request_ids`` array comparison.
        """
        campaign = campaign_from_seed(campaign_seed)
        action_seed = campaign_seed + 1000
        sync = drive(
            soa_factory(campaign),
            campaign.steps,
            action_seed=action_seed,
            info=False,
        )
        sharded = drive(
            subproc_factory(campaign, backend),
            campaign.steps,
            action_seed=action_seed,
            info=False,
        )
        assert_trajectories_equal(
            sync, sharded, ignore_info_keys=PROCESS_LOCAL_INFO_KEYS
        )


class TestKBoundaries:
    """K=1, K = per-worker shard size, and K=256, across backends."""

    BOUNDARY = Campaign(
        seed=17,
        num_lanes=4,
        steps=25,
        num_edge_nodes=6,
        arrival_rate=0.9,
        horizon=120.0,
        requests_per_episode=8,
        failure_config=FailureConfig(
            mean_time_to_failure=30.0, mean_time_to_repair=10.0, seed=5
        ),
    )

    def _sized(self, num_lanes: int, steps: int = 25) -> Campaign:
        base = self.BOUNDARY
        return Campaign(
            seed=base.seed,
            num_lanes=num_lanes,
            steps=steps,
            num_edge_nodes=base.num_edge_nodes,
            arrival_rate=base.arrival_rate,
            horizon=base.horizon,
            requests_per_episode=base.requests_per_episode,
            failure_config=base.failure_config,
        )

    @pytest.mark.parametrize("num_lanes", [1, 2, 4])
    def test_sync_soa_matches_reference(self, num_lanes):
        campaign = self._sized(num_lanes)
        reference = drive(reference_factory(campaign), campaign.steps)
        soa = drive(soa_factory(campaign), campaign.steps)
        assert_trajectories_equal(reference, soa)

    @needs_fork
    @pytest.mark.parametrize("num_lanes", [1, 2, 4])
    @pytest.mark.parametrize("backend", ["reference", "soa"])
    def test_subproc_shards_match_sync_soa(self, num_lanes, backend):
        """Two-worker shards (so K=2 equals one shard block) match in-process.

        ``request_id`` is excluded: each worker process numbers requests with
        its own counter (see PROCESS_LOCAL_INFO_KEYS).
        """
        campaign = self._sized(num_lanes, steps=20)
        sync = drive(soa_factory(campaign), campaign.steps)
        sharded = drive(subproc_factory(campaign, backend), campaign.steps)
        assert_trajectories_equal(
            sync, sharded, ignore_info_keys=PROCESS_LOCAL_INFO_KEYS
        )

    def test_k256_sync_soa_matches_reference(self):
        campaign = Campaign(
            seed=29,
            num_lanes=256,
            steps=6,
            num_edge_nodes=4,
            arrival_rate=0.8,
            horizon=100.0,
            requests_per_episode=4,
            failure_config=None,
        )
        reference = drive(
            reference_factory(campaign), campaign.steps, record_context=False
        )
        soa = drive(soa_factory(campaign), campaign.steps, record_context=False)
        assert_trajectories_equal(reference, soa)


class TestMidEpisodeLaneReset:
    """reset_lane in the middle of other lanes' episodes, both backends."""

    CAMPAIGN = Campaign(
        seed=11,
        num_lanes=3,
        steps=30,
        num_edge_nodes=6,
        arrival_rate=1.0,
        horizon=140.0,
        requests_per_episode=10,
        failure_config=FailureConfig(
            mean_time_to_failure=35.0, mean_time_to_repair=12.0, seed=3
        ),
    )
    RESETS = {7: 1, 15: 0, 23: 2}

    def test_sync_soa_matches_reference(self):
        campaign = self.CAMPAIGN
        reference = drive(
            reference_factory(campaign), campaign.steps, reset_lane_at=self.RESETS
        )
        soa = drive(soa_factory(campaign), campaign.steps, reset_lane_at=self.RESETS)
        assert_trajectories_equal(reference, soa)

    @needs_fork
    @pytest.mark.parametrize("backend", ["reference", "soa"])
    def test_subproc_matches_sync_soa(self, backend):
        campaign = self.CAMPAIGN
        sync = drive(
            soa_factory(campaign), campaign.steps, reset_lane_at=self.RESETS
        )
        sharded = drive(
            subproc_factory(campaign, backend), campaign.steps, reset_lane_at=self.RESETS
        )
        assert_trajectories_equal(
            sync, sharded, ignore_info_keys=PROCESS_LOCAL_INFO_KEYS
        )


class TestFenceRowHygiene:
    """Regression: fence rows must not leak across episode boundaries.

    A lane whose episode terminates while nodes are fault-fenced must come
    back (auto-reset or ``reset_lane``) with its ``(K, N)`` fence-mask row
    cleared, otherwise the batched mask kernel keeps excluding nodes that
    the fresh episode never fenced.
    """

    @staticmethod
    def _build():
        scenario = reference_scenario(
            arrival_rate=1.0, num_edge_nodes=6, horizon=80.0, seed=13
        )
        return SoAVecPlacementEnv.from_scenario(
            scenario,
            4,
            seed=13,
            env_config=EnvConfig(requests_per_episode=5),
            failure_config=FailureConfig(
                mean_time_to_failure=12.0, mean_time_to_repair=30.0, seed=2
            ),
        )

    @staticmethod
    def _assert_fence_invariant(env):
        for lane, lane_state in enumerate(env._lanes):
            fence_rows = set(np.flatnonzero(env._fence_rows[lane]).tolist())
            assert fence_rows == lane_state.failed_rows, (
                f"lane {lane}: fence-mask rows {sorted(fence_rows)} != "
                f"failed rows {sorted(lane_state.failed_rows)}"
            )

    def test_auto_reset_clears_fence_rows(self):
        env = self._build()
        rng = np.random.default_rng(7)
        env.reset()
        fault_fenced_terminals = 0
        for _ in range(160):
            fenced_before = env._fence_rows.copy()
            masks = env.valid_action_masks()
            _, _, dones, _ = env.step(masked_random_actions(masks, rng))
            self._assert_fence_invariant(env)
            fault_fenced_terminals += int(
                np.any(dones & fenced_before.any(axis=1))
            )
        # The regression needs the triggering condition to actually occur:
        # at least one lane must have terminated while nodes were fenced.
        assert fault_fenced_terminals > 0, (
            "no episode ever terminated with fenced nodes; the regression "
            "path was not exercised — raise the failure rate"
        )

    def test_reset_lane_clears_fence_rows(self):
        env = self._build()
        rng = np.random.default_rng(7)
        env.reset()
        saw_fenced_lane = False
        for step in range(120):
            masks = env.valid_action_masks()
            env.step(masked_random_actions(masks, rng))
            fenced_lanes = np.flatnonzero(env._fence_rows.any(axis=1))
            if fenced_lanes.size:
                saw_fenced_lane = True
                env.reset_lane(int(fenced_lanes[0]))
                self._assert_fence_invariant(env)
        assert saw_fenced_lane, (
            "no lane was ever fenced; the reset_lane regression path was "
            "not exercised — raise the failure rate"
        )


class TestBackendSeam:
    """make_vec_env backend resolution and SoA support detection."""

    @staticmethod
    def _grid(num_lanes=2):
        scenario = reference_scenario(
            arrival_rate=0.8, num_edge_nodes=6, horizon=100.0, seed=0
        )
        return [scenario] * num_lanes

    def test_soa_backend_is_opt_in(self):
        venv = make_vec_env(self._grid(), workers=1, backend="soa")
        assert isinstance(venv, SoAVecPlacementEnv)
        assert venv.backend == "soa"
        default = make_vec_env(self._grid(), workers=1)
        assert isinstance(default, VecPlacementEnv)
        assert default.backend == "reference"

    def test_auto_backend_picks_soa_for_uniform_lanes(self):
        venv = make_vec_env(self._grid(), workers=1, backend="auto")
        assert isinstance(venv, SoAVecPlacementEnv)

    def test_env_variable_selects_backend(self, monkeypatch):
        monkeypatch.setenv("REPRO_ENV_BACKEND", "soa")
        venv = make_vec_env(self._grid(), workers=1)
        assert isinstance(venv, SoAVecPlacementEnv)

    def test_unknown_backend_rejected(self):
        with pytest.raises(ValueError, match="unknown env backend"):
            make_vec_env(self._grid(), workers=1, backend="columnar")

    def test_soa_supported_rejects_mixed_configs(self):
        specs = lane_specs_from_scenarios(
            self._grid(), seed=0, env_config=EnvConfig(requests_per_episode=9)
        )
        assert soa_supported(specs)
        mixed = [
            specs[0],
            dataclass_replace(specs[1], env_config=EnvConfig(requests_per_episode=21)),
        ]
        assert not soa_supported(mixed)


class TestShadowLedgerSync:
    """Regression for the batched-commit resync window (RPL204's target).

    ``_finalize_batch`` writes whole lanes of ``_node_used``/``_link_used``
    with one kernel and then resyncs the Python shadow rows via
    ``_resync_shadow_lanes``; a missed or partial resync would leave the
    scalar replay paths reading stale shadows.  After every step — full and
    lean protocol, with and without fault injection — the numpy ledgers and
    their shadows must be exactly equal.
    """

    #: Faulted (even) and clean (odd) campaigns across 1-4 lanes.
    SYNC_SEEDS = (0, 1, 2, 3, 6, 9)

    @staticmethod
    def _assert_synced(env):
        np.testing.assert_array_equal(
            env._node_used,
            np.asarray(env._node_used_py, dtype=env._node_used.dtype),
        )
        np.testing.assert_array_equal(
            env._link_used,
            np.asarray(env._link_used_py, dtype=env._link_used.dtype),
        )

    @pytest.mark.parametrize("lean", [False, True], ids=["full", "lean"])
    @pytest.mark.parametrize("campaign_seed", SYNC_SEEDS)
    def test_shadows_match_numpy_after_every_step(self, campaign_seed, lean):
        campaign = campaign_from_seed(campaign_seed)
        env = soa_factory(campaign)()
        rng = np.random.default_rng(campaign_seed + 77)
        env.reset(observe=not lean)
        self._assert_synced(env)
        for _ in range(campaign.steps):
            masks = np.array(env.valid_action_masks(), dtype=bool, copy=True)
            actions = masked_random_actions(masks, rng)
            env.step(actions, observe=not lean, info=not lean)
            self._assert_synced(env)
