"""Lean-step protocol unit tests plus SoA cache/profiling regressions.

Covers the three satellite behaviours around the lean-step fast path:

* the ``_type_info`` cache must key on stable type *names* (with an
  identity check), never on ``id()`` — CPython recycles ids after GC,
  which silently handed brand-new VNF types a stale cached row;
* the optional kernel-timing counters (``profile=True`` /
  ``REPRO_ENV_PROFILE=1``) must accumulate per-phase seconds without
  affecting results, and stay zero when disabled;
* the lean accessors (``last_outcome_codes`` / ``last_request_done`` /
  ``last_request_ids`` / ``last_episode_stats``) must mirror the info
  dicts of the full protocol and reject lanes that did not finish.
"""

import gc

import numpy as np
import pytest

from differential import masked_random_actions
from repro.core.env import EnvConfig
from repro.core.soa import SoAVecPlacementEnv
from repro.core.vecenv import OUTCOME_CODE, VecPlacementEnv
from repro.nfv.vnf import make_vnf_type
from repro.workloads.scenarios import reference_scenario


def _scenario(seed: int = 0):
    return reference_scenario(
        arrival_rate=0.9, num_edge_nodes=6, horizon=120.0, seed=seed
    )


def _soa_env(num_lanes: int = 3, *, profile: bool = False, seed: int = 0):
    return SoAVecPlacementEnv.from_scenario(
        _scenario(seed),
        num_lanes,
        seed=seed,
        env_config=EnvConfig(requests_per_episode=6),
        profile=profile,
    )


def _ref_env(num_lanes: int = 3, seed: int = 0):
    return VecPlacementEnv.from_scenario(
        _scenario(seed),
        num_lanes,
        seed=seed,
        env_config=EnvConfig(requests_per_episode=6),
    )


class TestTypeInfoCache:
    """Regression: ``_type_info`` must survive id reuse and name collisions."""

    def test_cache_keys_are_names_not_ids(self):
        env = _soa_env(1)
        vnf = make_vnf_type("firewall", cpu=2.0, memory=2.0)
        env._vnf_info(vnf)
        assert all(isinstance(key, str) for key in env._type_info), (
            "cache keys must be stable type names, not id() integers"
        )
        assert "firewall" in env._type_info

    def test_id_reuse_does_not_serve_stale_info(self):
        """Force CPython to recycle a freed type's id onto a new type.

        With the historical ``id(vnf_type)``-keyed cache the recycled id
        aliased the stale entry and the new type inherited the old type's
        processing delay / license cost.  The name-keyed cache with an
        identity check must rebuild instead.
        """
        env = _soa_env(1)
        stales = [
            make_vnf_type(
                "firewall", cpu=2.0, memory=2.0,
                processing_delay_ms=111.0, license_cost=5.0,
            )
            for _ in range(64)
        ]
        for stale in stales:
            assert env._vnf_info(stale)[0] == 111.0
        # The cache holds a strong reference to the cached object (so a live
        # entry's id can never be recycled).  Evict it with a same-named
        # replacement, then free the whole stale batch so their ids return
        # to the allocator, and allocate a bigger batch of new types — some
        # of them land on recycled ids.
        replacement = make_vnf_type(
            "firewall", cpu=2.0, memory=2.0,
            processing_delay_ms=50.0, license_cost=1.0,
        )
        assert env._vnf_info(replacement)[0] == 50.0
        freed_ids = {id(stale) for stale in stales}
        del stales, stale
        gc.collect()
        candidates = [
            make_vnf_type(
                "firewall", cpu=2.0, memory=2.0,
                processing_delay_ms=222.0, license_cost=7.0,
            )
            for _ in range(512)
        ]
        fresh = next((c for c in candidates if id(c) in freed_ids), None)
        if fresh is None:
            pytest.skip("allocator never recycled a freed id on this runtime")
        proc, _, license_cost, cached_type = env._vnf_info(fresh)
        assert proc == 222.0, "stale cached processing delay served after id reuse"
        assert license_cost == 7.0
        assert cached_type is fresh

    def test_same_name_different_object_rebuilds(self):
        env = _soa_env(1)
        first = make_vnf_type(
            "nat", cpu=1.0, memory=1.0, processing_delay_ms=0.3
        )
        second = make_vnf_type(
            "nat", cpu=1.0, memory=1.0, processing_delay_ms=9.9
        )
        assert env._vnf_info(first)[0] == 0.3
        assert env._vnf_info(second)[0] == 9.9
        # And a repeat hit on the cached object stays a genuine cache hit.
        assert env._vnf_info(second)[3] is second


class TestKernelTimings:
    """The opt-in per-phase profiling counters."""

    @staticmethod
    def _run_steps(env, steps: int = 5):
        rng = np.random.default_rng(3)
        env.reset()
        for _ in range(steps):
            masks = env.valid_action_masks()
            env.step(masked_random_actions(masks, rng))

    def test_disabled_by_default(self):
        env = _soa_env(2)
        self._run_steps(env)
        timings = env.kernel_timings()
        assert set(timings) == {
            "mask_s", "observe_s", "commit_s", "info_s", "step_s", "steps"
        }
        assert all(value == 0.0 for value in timings.values())

    def test_profile_flag_accumulates_phases(self):
        env = _soa_env(2, profile=True)
        self._run_steps(env, steps=5)
        timings = env.kernel_timings()
        assert timings["steps"] == 5.0
        assert timings["step_s"] > 0.0
        assert timings["mask_s"] > 0.0
        assert timings["observe_s"] > 0.0
        assert timings["commit_s"] >= 0.0
        assert timings["info_s"] >= 0.0
        # Phase totals are sub-spans of whole steps plus the mask calls.
        assert timings["commit_s"] + timings["info_s"] <= timings["step_s"]

    def test_env_variable_enables_profiling(self, monkeypatch):
        monkeypatch.setenv("REPRO_ENV_PROFILE", "1")
        env = _soa_env(2)
        self._run_steps(env, steps=2)
        timings = env.kernel_timings()
        assert timings["steps"] == 2.0
        assert timings["step_s"] > 0.0

    def test_profiled_run_matches_unprofiled(self):
        """Timing instrumentation must not perturb trajectories."""
        plain, profiled = _soa_env(2), _soa_env(2, profile=True)
        rng_a, rng_b = np.random.default_rng(5), np.random.default_rng(5)
        states_a, states_b = plain.reset(), profiled.reset()
        np.testing.assert_array_equal(states_a, states_b)
        for _ in range(8):
            masks_a = plain.valid_action_masks()
            masks_b = profiled.valid_action_masks()
            np.testing.assert_array_equal(masks_a, masks_b)
            actions = masked_random_actions(masks_a, rng_a)
            np.testing.assert_array_equal(
                actions, masked_random_actions(masks_b, rng_b)
            )
            sa, ra, da, _ = plain.step(actions)
            sb, rb, db, _ = profiled.step(actions)
            np.testing.assert_array_equal(sa, sb)
            np.testing.assert_array_equal(ra, rb)
            np.testing.assert_array_equal(da, db)


class TestLeanAccessors:
    """Lean-step accessors mirror the full protocol's info dicts."""

    @pytest.mark.parametrize("make_env", [_ref_env, _soa_env])
    def test_accessors_match_full_infos(self, make_env):
        env = make_env(3)
        rng = np.random.default_rng(11)
        env.reset()
        saw_done = False
        for _ in range(30):
            masks = env.valid_action_masks()
            actions = masked_random_actions(masks, rng)
            _, _, dones, infos = env.step(actions)
            codes = env.last_outcome_codes()
            req_done = env.last_request_done()
            req_ids = env.last_request_ids()
            assert codes.dtype == np.int8 and codes.shape == (3,)
            for lane, info in enumerate(infos):
                assert codes[lane] == OUTCOME_CODE[info["outcome"]]
                assert bool(req_done[lane]) == bool(info["request_done"])
                assert int(req_ids[lane]) == int(info["request_id"])
                if dones[lane]:
                    saw_done = True
                    assert env.last_episode_stats(lane) == info["episode_stats"]
                else:
                    with pytest.raises(
                        KeyError, match="did not finish an episode"
                    ):
                        env.last_episode_stats(lane)
        assert saw_done, "no episode finished in 30 steps; lengthen the drive"

    @pytest.mark.parametrize("make_env", [_ref_env, _soa_env])
    def test_info_false_returns_none_infos(self, make_env):
        env = make_env(2)
        rng = np.random.default_rng(1)
        env.reset()
        masks = env.valid_action_masks()
        _, rewards, dones, infos = env.step(
            masked_random_actions(masks, rng), info=False
        )
        assert infos is None
        assert rewards.shape == (2,) and dones.shape == (2,)
        # The outcome arrays are still recorded on lean steps.
        assert env.last_outcome_codes().shape == (2,)
        assert env.last_request_done().shape == (2,)
