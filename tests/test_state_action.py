"""Unit tests for the MDP state encoder and action space."""

import numpy as np
import pytest

from repro.core.action import ActionSpace
from repro.core.state import NODE_FEATURES, REQUEST_SCALARS, EncoderConfig, StateEncoder
from repro.substrate.resources import ResourceVector
from tests.conftest import build_request


@pytest.fixture
def encoder(small_network, catalog):
    return StateEncoder(small_network, catalog)


@pytest.fixture
def actions(small_network):
    return ActionSpace(small_network)


class TestStateEncoder:
    def test_state_dim_formula(self, encoder, small_network, catalog):
        expected = NODE_FEATURES * small_network.num_nodes + len(catalog) + REQUEST_SCALARS
        assert encoder.state_dim == expected

    def test_encoding_shape_and_range(self, encoder, catalog):
        request = build_request(catalog, source=0)
        state = encoder.encode(request, 0, [], 0.0)
        assert state.shape == (encoder.state_dim,)
        assert np.all(state >= 0.0)
        assert np.all(state <= 1.0)

    def test_one_hot_marks_next_vnf(self, encoder, small_network, catalog):
        request = build_request(catalog, source=0, vnf_names=("ids", "nat"))
        state = encoder.encode(request, 0, [], 0.0)
        offset = NODE_FEATURES * small_network.num_nodes
        one_hot = state[offset : offset + len(catalog)]
        assert one_hot.sum() == 1.0
        assert one_hot[catalog.index_of("ids")] == 1.0

    def test_utilization_reflected_in_features(self, encoder, small_network, catalog):
        request = build_request(catalog, source=0)
        before = encoder.encode(request, 0, [], 0.0)
        small_network.allocate_node(1, "hog", ResourceVector(4, 8, 50))
        after = encoder.encode(request, 0, [], 0.0)
        node1_cpu_index = 1 * NODE_FEATURES
        assert after[node1_cpu_index] > before[node1_cpu_index]

    def test_anchor_switches_to_last_placed_vnf(self, encoder, catalog):
        request = build_request(catalog, source=0, vnf_names=("firewall", "nat"))
        assert encoder.anchor_node(request, []) == 0
        assert encoder.anchor_node(request, [3]) == 3

    def test_latency_features_relative_to_anchor(self, encoder, small_network, catalog):
        request = build_request(catalog, source=0, vnf_names=("firewall", "nat"), sla_ms=100.0)
        state_from_source = encoder.encode(request, 0, [], 0.0)
        state_from_node3 = encoder.encode(request, 1, [3], 6.0)
        # Latency feature of node 0 (index 2 within its block): 0 from source, >0 from node 3.
        assert state_from_source[2] == pytest.approx(0.0)
        assert state_from_node3[2] > 0.0

    def test_sla_consumption_feature(self, encoder, catalog):
        request = build_request(catalog, source=0, sla_ms=50.0)
        offset = encoder.state_dim - REQUEST_SCALARS
        fresh = encoder.encode(request, 0, [], 0.0)
        consumed = encoder.encode(request, 1, [1], 25.0)
        assert fresh[offset + 2] == pytest.approx(0.0)
        assert consumed[offset + 2] == pytest.approx(0.5)

    def test_invalid_vnf_index_rejected(self, encoder, catalog):
        request = build_request(catalog)
        with pytest.raises(ValueError):
            encoder.encode(request, 5, [], 0.0)

    def test_describe_matches_state_dim(self, encoder):
        assert len(encoder.describe()) == encoder.state_dim

    def test_encoder_config_validation(self):
        with pytest.raises(ValueError):
            EncoderConfig(max_chain_length=0)


class TestActionSpace:
    def test_sizes(self, actions, small_network):
        assert actions.num_actions == small_network.num_nodes + 1
        assert actions.reject_action == small_network.num_nodes

    def test_node_action_round_trip(self, actions, small_network):
        for node_id in small_network.node_ids:
            action = actions.action_for_node(node_id)
            assert actions.node_for_action(action) == node_id
            assert not actions.is_reject(action)
        assert actions.is_reject(actions.reject_action)

    def test_node_for_reject_action_rejected(self, actions):
        with pytest.raises(ValueError):
            actions.node_for_action(actions.reject_action)

    def test_mask_reject_always_valid(self, actions, catalog):
        request = build_request(catalog, source=0)
        mask = actions.valid_mask(request, 0, [], 0.0)
        assert mask[actions.reject_action]

    def test_mask_excludes_full_nodes(self, actions, small_network, catalog):
        small_network.allocate_node(2, "hog", ResourceVector(7.9, 15.9, 99))
        request = build_request(catalog, source=0)
        mask = actions.valid_mask(request, 0, [], 0.0)
        assert not mask[actions.action_for_node(2)]
        assert mask[actions.action_for_node(1)]

    def test_mask_excludes_latency_infeasible_nodes(self, actions, catalog):
        # SLA of 3 ms: node 3 is 6 ms away from the source, node 1 only 2 ms.
        request = build_request(catalog, source=0, sla_ms=3.0, vnf_names=("nat",))
        mask = actions.valid_mask(request, 0, [], 0.0)
        assert mask[actions.action_for_node(1)]
        assert not mask[actions.action_for_node(3)]

    def test_latency_check_can_be_disabled(self, actions, catalog):
        request = build_request(catalog, source=0, sla_ms=3.0, vnf_names=("nat",))
        mask = actions.valid_mask(request, 0, [], 0.0, latency_check=False)
        assert mask[actions.action_for_node(3)]

    def test_greedy_fallback(self, actions):
        mask = np.zeros(actions.num_actions, dtype=bool)
        mask[actions.reject_action] = True
        assert actions.greedy_fallback_action(mask) == actions.reject_action
        mask[2] = True
        assert actions.greedy_fallback_action(mask) == 2
