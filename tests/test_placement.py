"""Unit tests for chain-to-substrate placements."""

import pytest

from repro.nfv.placement import Placement, PlacementError
from repro.substrate.resources import ResourceVector
from tests.conftest import build_request


class TestRoutingAndLatency:
    def test_end_to_end_latency_on_chain_topology(self, small_network, catalog):
        # Chain topology 0-1-2-3 with 2 ms per link; place firewall on 1, nat on 3.
        request = build_request(catalog, source=0, vnf_names=("firewall", "nat"))
        placement = Placement.build(request, [1, 3], small_network)
        propagation = 2.0 + 4.0  # 0->1 then 1->3
        processing = (
            catalog.get("firewall").processing_delay_ms
            + catalog.get("nat").processing_delay_ms
        )
        assert placement.propagation_latency_ms() == pytest.approx(propagation)
        assert placement.end_to_end_latency_ms() == pytest.approx(propagation + processing)

    def test_colocated_chain_has_zero_propagation_after_ingress(self, small_network, catalog):
        request = build_request(catalog, source=1, vnf_names=("firewall", "nat"))
        placement = Placement.build(request, [1, 1], small_network)
        assert placement.propagation_latency_ms() == pytest.approx(0.0)

    def test_destination_extends_path(self, small_network, catalog):
        request = build_request(catalog, source=0, vnf_names=("firewall",))
        request.destination_node_id = 3
        placement = Placement.build(request, [1], small_network)
        assert placement.propagation_latency_ms() == pytest.approx(2.0 + 4.0)

    def test_assignment_length_mismatch_rejected(self, small_network, catalog):
        request = build_request(catalog, vnf_names=("firewall", "nat"))
        with pytest.raises(ValueError):
            Placement.build(request, [0], small_network)

    def test_distinct_nodes_and_edge_fraction(self, tiny_edge_cloud_network, catalog):
        request = build_request(catalog, source=0, vnf_names=("firewall", "nat"))
        placement = Placement.build(request, [0, 2], tiny_edge_cloud_network)
        assert placement.distinct_nodes() == [0, 2]
        assert placement.uses_cloud(tiny_edge_cloud_network)
        assert placement.edge_fraction(tiny_edge_cloud_network) == pytest.approx(0.5)


class TestSLAAndAvailability:
    def test_sla_violated_when_latency_exceeds_budget(self, tiny_edge_cloud_network, catalog):
        # Route 0 -> cloud(2) costs 2 + 30 ms one way; SLA of 10 ms is violated.
        request = build_request(catalog, source=0, sla_ms=10.0, vnf_names=("firewall",))
        placement = Placement.build(request, [2], tiny_edge_cloud_network)
        assert not placement.satisfies_sla(tiny_edge_cloud_network)
        assert not placement.is_feasible(tiny_edge_cloud_network)

    def test_availability_uses_tiers_when_network_given(self, tiny_edge_cloud_network, catalog):
        request = build_request(catalog, source=0, sla_ms=200.0, vnf_names=("firewall",))
        edge_placement = Placement.build(request, [0], tiny_edge_cloud_network)
        cloud_placement = Placement.build(request, [2], tiny_edge_cloud_network)
        assert cloud_placement.availability(tiny_edge_cloud_network) > edge_placement.availability(
            tiny_edge_cloud_network
        )


class TestFeasibility:
    def test_feasible_when_resources_available(self, small_network, catalog):
        request = build_request(catalog, source=0)
        placement = Placement.build(request, [0, 1], small_network)
        assert placement.is_feasible(small_network)

    def test_infeasible_when_node_capacity_exceeded(self, small_network, catalog):
        # Saturate node 1's CPU, then try to place there.
        small_network.allocate_node(1, "hog", ResourceVector(7.9, 1, 1))
        request = build_request(catalog, source=0, vnf_names=("firewall",))
        placement = Placement.build(request, [1], small_network)
        assert not placement.is_feasible(small_network)

    def test_colocation_demands_are_aggregated(self, small_network, catalog):
        # Each node has 8 CPU; one 'ids' at 50 Mbps needs 4.5 CPU, so two of
        # them colocated (9 CPU) must be detected as infeasible even though
        # each fits individually.
        request = build_request(catalog, source=0, vnf_names=("ids", "ids"), bandwidth=50.0)
        placement = Placement.build(request, [1, 1], small_network)
        assert not placement.is_feasible(small_network)

    def test_bandwidth_shared_link_counted_per_traversal(self, small_network, catalog):
        # Assignment 0 -> 1 -> 0 crosses link (0,1) twice; with 90 Mbps demand
        # and 1000 Mbps capacity this is fine, but at 600 Mbps it is not.
        request = build_request(catalog, source=0, vnf_names=("firewall", "nat"), bandwidth=600.0)
        placement = Placement.build(request, [1, 0], small_network)
        assert not placement.is_feasible(small_network)


class TestCommitRelease:
    def test_commit_allocates_and_release_frees(self, small_network, catalog):
        request = build_request(catalog, source=0)
        placement = Placement.build(request, [1, 2], small_network)
        placement.commit(small_network)
        assert placement.is_committed
        assert small_network.node(1).allocation_count == 1
        assert small_network.node(2).allocation_count == 1
        assert small_network.link(0, 1).used_bandwidth == pytest.approx(50.0)
        placement.release(small_network)
        assert not placement.is_committed
        assert small_network.total_used().is_zero()
        assert small_network.link(0, 1).used_bandwidth == 0.0

    def test_double_commit_rejected(self, small_network, catalog):
        request = build_request(catalog, source=0)
        placement = Placement.build(request, [1, 2], small_network)
        placement.commit(small_network)
        with pytest.raises(PlacementError):
            placement.commit(small_network)

    def test_release_without_commit_rejected(self, small_network, catalog):
        request = build_request(catalog, source=0)
        placement = Placement.build(request, [1, 2], small_network)
        with pytest.raises(PlacementError):
            placement.release(small_network)

    def test_failed_commit_rolls_back_cleanly(self, small_network, catalog):
        # Saturate node 2 after routing so commit fails on the second VNF.
        request = build_request(catalog, source=0)
        placement = Placement.build(request, [1, 2], small_network)
        small_network.allocate_node(2, "hog", ResourceVector(7.9, 15, 90))
        with pytest.raises(PlacementError):
            placement.commit(small_network)
        # Node 1's allocation from the partial commit must have been rolled back.
        assert small_network.node(1).allocation_count == 0
        assert small_network.link(0, 1).used_bandwidth == 0.0
        assert not placement.is_committed


class TestCost:
    def test_cost_positive_and_additive(self, small_network, catalog):
        request = build_request(catalog, source=0)
        placement = Placement.build(request, [1, 2], small_network)
        hosting = placement.hosting_cost(small_network)
        transport = placement.transport_cost(small_network)
        assert hosting > 0
        assert transport > 0
        assert placement.total_cost(small_network) == pytest.approx(hosting + transport)

    def test_longer_holding_time_costs_more(self, small_network, catalog):
        short = build_request(catalog, source=0, holding=10.0)
        long = build_request(catalog, source=0, holding=100.0)
        short_cost = Placement.build(short, [1, 2], small_network).total_cost(small_network)
        long_cost = Placement.build(long, [1, 2], small_network).total_cost(small_network)
        assert long_cost > short_cost

    def test_snapshot_with_network_includes_costs(self, small_network, catalog):
        request = build_request(catalog, source=0)
        placement = Placement.build(request, [1, 2], small_network)
        snapshot = placement.snapshot(small_network)
        assert snapshot["total_cost"] > 0
        assert snapshot["node_assignment"] == [1, 2]
        assert snapshot["sla_satisfied"] is True
