"""Unit tests for the heuristic placement baselines."""

import pytest

from repro.baselines import (
    BestFitPolicy,
    BruteForceOptimalPolicy,
    CloudOnlyPolicy,
    EdgeOnlyPolicy,
    FirstFitPolicy,
    GreedyCheapestPolicy,
    GreedyLeastLoadedPolicy,
    GreedyNearestPolicy,
    RandomPlacementPolicy,
    ViterbiPlacementPolicy,
    standard_baselines,
)
from repro.baselines.optimal import SearchSpaceTooLargeError
from repro.substrate.resources import ResourceVector
from tests.conftest import build_request

ALL_POLICIES = [
    RandomPlacementPolicy(seed=0),
    GreedyNearestPolicy(),
    GreedyLeastLoadedPolicy(),
    GreedyCheapestPolicy(),
    FirstFitPolicy(),
    BestFitPolicy(),
    EdgeOnlyPolicy(),
    ViterbiPlacementPolicy(),
    BruteForceOptimalPolicy(),
]


class TestAllPoliciesProduceFeasiblePlacements:
    @pytest.mark.parametrize("policy", ALL_POLICIES, ids=lambda p: p.name)
    def test_feasible_on_empty_substrate(self, policy, small_network, catalog):
        request = build_request(catalog, source=0, sla_ms=100.0)
        placement = policy.place(request, small_network)
        assert placement is not None
        assert placement.is_feasible(small_network)
        assert placement.satisfies_sla(small_network)

    @pytest.mark.parametrize("policy", ALL_POLICIES, ids=lambda p: p.name)
    def test_policies_do_not_mutate_network(self, policy, small_network, catalog):
        request = build_request(catalog, source=0, sla_ms=100.0)
        policy.place(request, small_network)
        assert small_network.total_used().is_zero()
        assert all(link.used_bandwidth == 0.0 for link in small_network.links())

    @pytest.mark.parametrize("policy", ALL_POLICIES, ids=lambda p: p.name)
    def test_reject_when_no_capacity(self, policy, small_network, catalog):
        for node_id in small_network.node_ids:
            small_network.allocate_node(node_id, "hog", ResourceVector(7.9, 15.9, 99.0))
        request = build_request(catalog, source=0, sla_ms=100.0)
        assert policy.place(request, small_network) is None


class TestGreedyNearest:
    def test_places_on_source_when_possible(self, small_network, catalog):
        request = build_request(catalog, source=2, sla_ms=100.0)
        placement = GreedyNearestPolicy().place(request, small_network)
        assert placement.node_assignment == (2, 2)

    def test_skips_full_source_node(self, small_network, catalog):
        small_network.allocate_node(2, "hog", ResourceVector(7.9, 1, 1))
        request = build_request(catalog, source=2, sla_ms=100.0)
        placement = GreedyNearestPolicy().place(request, small_network)
        assert 2 not in placement.node_assignment


class TestGreedyLeastLoaded:
    def test_prefers_empty_node(self, small_network, catalog):
        small_network.allocate_node(0, "a", ResourceVector(6, 6, 6))
        small_network.allocate_node(1, "b", ResourceVector(4, 4, 4))
        small_network.allocate_node(2, "c", ResourceVector(2, 2, 2))
        request = build_request(catalog, source=0, sla_ms=200.0, vnf_names=("nat",))
        placement = GreedyLeastLoadedPolicy().place(request, small_network)
        assert placement.node_assignment == (3,)


class TestFitPolicies:
    def test_first_fit_picks_lowest_id(self, small_network, catalog):
        request = build_request(catalog, source=3, sla_ms=200.0, vnf_names=("nat",))
        placement = FirstFitPolicy().place(request, small_network)
        assert placement.node_assignment == (0,)

    def test_best_fit_consolidates_onto_fuller_node(self, small_network, catalog):
        small_network.allocate_node(2, "partial", ResourceVector(4, 4, 4))
        request = build_request(catalog, source=0, sla_ms=200.0, vnf_names=("nat",))
        placement = BestFitPolicy().place(request, small_network)
        assert placement.node_assignment == (2,)

    def test_cloud_only_requires_cloud_nodes(self, small_network, tiny_edge_cloud_network, catalog):
        request = build_request(catalog, source=0, sla_ms=200.0)
        assert CloudOnlyPolicy().place(request, small_network) is None
        placement = CloudOnlyPolicy().place(request, tiny_edge_cloud_network)
        assert placement is not None
        assert set(placement.node_assignment) == {2}

    def test_edge_only_never_uses_cloud(self, tiny_edge_cloud_network, catalog):
        request = build_request(catalog, source=0, sla_ms=200.0)
        placement = EdgeOnlyPolicy().place(request, tiny_edge_cloud_network)
        assert placement is not None
        assert not placement.uses_cloud(tiny_edge_cloud_network)


class TestViterbi:
    def test_matches_brute_force_latency_optimum(self, small_network, catalog):
        request = build_request(catalog, source=0, sla_ms=200.0, vnf_names=("firewall", "nat", "monitor"))
        viterbi = ViterbiPlacementPolicy().place(request, small_network)
        optimal = BruteForceOptimalPolicy(latency_weight=1.0).place(request, small_network)
        assert viterbi.end_to_end_latency_ms() == pytest.approx(
            optimal.end_to_end_latency_ms()
        )

    def test_cost_weight_changes_assignment_preference(self, tiny_edge_cloud_network, catalog):
        # With an enormous cost weight the cheap cloud node wins despite latency.
        request = build_request(catalog, source=0, sla_ms=500.0, vnf_names=("firewall",))
        latency_only = ViterbiPlacementPolicy(cost_weight=0.0).place(request, tiny_edge_cloud_network)
        cost_heavy = ViterbiPlacementPolicy(cost_weight=500.0).place(request, tiny_edge_cloud_network)
        assert latency_only.node_assignment != cost_heavy.node_assignment
        assert cost_heavy.node_assignment == (2,)

    def test_invalid_weights_rejected(self):
        with pytest.raises(ValueError):
            ViterbiPlacementPolicy(cost_weight=-1.0)


class TestBruteForce:
    def test_search_space_guard(self, small_network, catalog):
        request = build_request(catalog, source=0, sla_ms=200.0, vnf_names=("nat", "nat", "nat"))
        policy = BruteForceOptimalPolicy(max_assignments=10)
        with pytest.raises(SearchSpaceTooLargeError):
            policy.place(request, small_network)

    def test_search_space_guard_fallback(self, small_network, catalog):
        request = build_request(catalog, source=0, sla_ms=200.0, vnf_names=("nat", "nat", "nat"))
        policy = BruteForceOptimalPolicy(max_assignments=10, fallback_to_reject=True)
        assert policy.place(request, small_network) is None

    def test_latency_objective_prefers_colocation_at_source(self, small_network, catalog):
        request = build_request(catalog, source=1, sla_ms=200.0)
        placement = BruteForceOptimalPolicy().place(request, small_network)
        assert placement.node_assignment == (1, 1)


class TestLatencyOfPartial:
    """latency_of_partial must agree with Placement end-to-end accounting."""

    def test_full_assignment_matches_placement_without_destination(
        self, small_network, catalog
    ):
        from repro.baselines import latency_of_partial
        from repro.nfv.placement import Placement

        request = build_request(catalog, source=0, sla_ms=200.0)
        assignment = [1, 2]
        placement = Placement.build(request, assignment, small_network)
        assert latency_of_partial(request, assignment, small_network) == (
            pytest.approx(placement.end_to_end_latency_ms())
        )

    def test_full_assignment_includes_egress_to_destination(
        self, small_network, catalog
    ):
        from repro.baselines import latency_of_partial
        from repro.nfv.placement import Placement

        request = build_request(catalog, source=0, sla_ms=200.0)
        request.destination_node_id = 3
        assignment = [1, 1]
        placement = Placement.build(request, assignment, small_network)
        full = latency_of_partial(request, assignment, small_network)
        assert full == pytest.approx(placement.end_to_end_latency_ms())
        # The egress leg is real latency: dropping it underestimates.
        egress = small_network.latency_between(1, 3)
        assert egress > 0.0
        prefix = latency_of_partial(request, assignment[:1], small_network)
        assert full > prefix

    def test_partial_prefix_charges_no_egress(self, small_network, catalog):
        from repro.baselines import latency_of_partial

        request = build_request(catalog, source=0, sla_ms=200.0)
        request.destination_node_id = 3
        # One VNF of two placed: propagation to node 1 + its processing only.
        expected = (
            small_network.latency_between(0, 1)
            + request.chain.vnf_at(0).processing_delay_ms
        )
        assert latency_of_partial(request, [1], small_network) == pytest.approx(
            expected
        )

    def test_partial_is_admissible_lower_bound(self, small_network, catalog):
        """Every prefix estimate stays below the full-chain latency."""
        from repro.baselines import latency_of_partial
        from repro.nfv.placement import Placement

        request = build_request(catalog, source=0, sla_ms=200.0)
        request.destination_node_id = 2
        assignment = [1, 3]
        placement = Placement.build(request, assignment, small_network)
        total = placement.end_to_end_latency_ms()
        for length in range(len(assignment) + 1):
            prefix = latency_of_partial(
                request, assignment[:length], small_network
            )
            assert prefix <= total + 1e-9


class TestStandardBaselines:
    def test_names_unique(self):
        names = [policy.name for policy in standard_baselines(seed=0)]
        assert len(names) == len(set(names))

    def test_contains_expected_policies(self):
        names = {policy.name for policy in standard_baselines(seed=0)}
        assert {"random", "greedy_nearest", "first_fit", "viterbi", "cloud_only"} <= names
