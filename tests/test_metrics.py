"""Unit tests for metric collection and reduction."""

import pytest

from repro.sim.metrics import MetricsCollector
from tests.conftest import build_request


@pytest.fixture
def collector():
    return MetricsCollector()


class TestRecording:
    def test_acceptance_ratio(self, collector, catalog):
        accepted = build_request(catalog)
        rejected = build_request(catalog)
        collector.record_acceptance(accepted, 10.0, True, 5.0, 8.0, 1.0)
        collector.record_rejection(rejected)
        assert collector.total_requests == 2
        assert collector.acceptance_ratio() == pytest.approx(0.5)
        assert len(collector.accepted) == 1
        assert len(collector.rejected) == 1

    def test_empty_collector_summary(self, collector):
        summary = collector.summary()
        assert summary.total_requests == 0
        assert summary.acceptance_ratio == 0.0
        assert summary.mean_latency_ms == 0.0
        assert summary.profit == 0.0

    def test_latency_statistics(self, collector, catalog):
        for latency in (10.0, 20.0, 30.0):
            collector.record_acceptance(build_request(catalog), latency, True, 1.0, 2.0, 1.0)
        summary = collector.summary()
        assert summary.mean_latency_ms == pytest.approx(20.0)
        assert summary.p95_latency_ms >= 28.0

    def test_cost_revenue_profit(self, collector, catalog):
        collector.record_acceptance(build_request(catalog), 10.0, True, cost=3.0, revenue=10.0, edge_fraction=1.0)
        collector.record_acceptance(build_request(catalog), 10.0, True, cost=2.0, revenue=5.0, edge_fraction=0.5)
        summary = collector.summary()
        assert summary.total_cost == pytest.approx(5.0)
        assert summary.total_revenue == pytest.approx(15.0)
        assert summary.profit == pytest.approx(10.0)
        assert summary.mean_cost_per_accepted == pytest.approx(2.5)
        assert summary.mean_edge_fraction == pytest.approx(0.75)

    def test_sla_violation_ratio(self, collector, catalog):
        collector.record_acceptance(build_request(catalog), 10.0, True, 1.0, 2.0, 1.0)
        collector.record_acceptance(build_request(catalog), 90.0, False, 1.0, 2.0, 1.0)
        assert collector.summary().sla_violation_ratio == pytest.approx(0.5)

    def test_acceptance_by_class(self, collector, catalog):
        a = build_request(catalog)
        b = build_request(catalog)
        collector.record_acceptance(a, 10.0, True, 1.0, 2.0, 1.0)
        collector.record_rejection(b)
        by_class = collector.acceptance_by_class()
        assert by_class["test"] == pytest.approx(0.5)

    def test_utilization_samples(self, collector):
        collector.record_utilization(10.0, 0.4, 0.1, 2.0, 3)
        collector.record_utilization(20.0, 0.6, 0.2, 3.0, 4)
        summary = collector.summary()
        assert summary.mean_edge_utilization == pytest.approx(0.5)
        assert summary.peak_edge_utilization == pytest.approx(0.6)
        assert summary.mean_utilization_imbalance == pytest.approx(0.15)

    def test_reset(self, collector, catalog):
        collector.record_acceptance(build_request(catalog), 10.0, True, 1.0, 2.0, 1.0)
        collector.record_utilization(1.0, 0.5, 0.1, 1.0, 1)
        collector.reset()
        assert collector.total_requests == 0
        assert collector.samples == []

    def test_summary_as_dict_round_trip(self, collector, catalog):
        collector.record_acceptance(build_request(catalog), 10.0, True, 1.0, 2.0, 1.0)
        data = collector.summary().as_dict()
        assert data["accepted_requests"] == 1
        assert isinstance(data["acceptance_by_class"], dict)


class TestDegenerateCases:
    def test_summary_with_zero_accepted_requests(self, collector, catalog):
        """All-rejected runs must reduce to well-defined zeros, not NaNs."""
        for _ in range(3):
            collector.record_rejection(build_request(catalog), reason="no_capacity")
        summary = collector.summary()
        assert summary.total_requests == 3
        assert summary.accepted_requests == 0
        assert summary.rejected_requests == 3
        assert summary.acceptance_ratio == 0.0
        assert summary.mean_latency_ms == 0.0
        assert summary.p95_latency_ms == 0.0
        assert summary.sla_violation_ratio == 0.0
        assert summary.mean_cost_per_accepted == 0.0
        assert summary.mean_edge_fraction == 0.0
        assert summary.acceptance_by_class == {"test": 0.0}

    def test_acceptance_by_class_with_rejected_only_class(self, collector, catalog):
        """A class seen only through rejections appears with ratio 0.0."""
        from repro.nfv.sfc import SFCRequest, ServiceFunctionChain
        from repro.nfv.sla import ServiceLevelAgreement

        accepted = build_request(catalog)
        rejected = SFCRequest(
            chain=ServiceFunctionChain(
                vnf_types=(catalog.get("nat"),),
                bandwidth_mbps=10.0,
                service_class="rejected_only",
            ),
            source_node_id=0,
            sla=ServiceLevelAgreement(max_latency_ms=50.0),
        )
        collector.record_acceptance(accepted, 12.0, True, 1.0, 2.0, 1.0)
        collector.record_rejection(rejected)
        by_class = collector.acceptance_by_class()
        assert by_class["test"] == pytest.approx(1.0)
        assert by_class["rejected_only"] == 0.0
        # Classes never recorded at all stay absent, not zero-filled.
        assert "unseen" not in by_class

    def test_single_sample_percentile(self, collector, catalog):
        """p95 over one accepted request is that request's latency."""
        collector.record_acceptance(build_request(catalog), 42.5, True, 1.0, 2.0, 1.0)
        summary = collector.summary()
        assert summary.mean_latency_ms == pytest.approx(42.5)
        assert summary.p95_latency_ms == pytest.approx(42.5)

    def test_acceptance_with_none_latency_is_excluded_from_latency_stats(
        self, collector, catalog
    ):
        collector.record_acceptance(build_request(catalog), 10.0, True, 1.0, 2.0, 1.0)
        collector.outcomes[0].latency_ms = None
        summary = collector.summary()
        assert summary.accepted_requests == 1
        assert summary.mean_latency_ms == 0.0
        assert summary.p95_latency_ms == 0.0
