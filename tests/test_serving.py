"""Tests for the online serving loop: budgets, admission, fallback, retry.

Every timing-sensitive path uses ``latency_model`` on :class:`BudgetedPolicy`
so decision latencies are deterministic — no test here sleeps or depends on
wall-clock speed.
"""

import pytest

from repro.baselines.greedy import GreedyLeastLoadedPolicy, GreedyNearestPolicy
from repro.core.timeout import BudgetedPolicy
from repro.serving.admission import AdmissionConfig, AdmissionController
from repro.serving.report import BoundedTrajectory, ServingReport, StreamingHistogram
from repro.serving.service import (
    ChainDecision,
    FallbackChain,
    OnlinePlacementService,
    ServingConfig,
)
from repro.sim.failures import ChaosEvent, DomainFailureConfig
from repro.experiments.runner import run_serving_soak
from repro.substrate.topology import TopologyConfig, linear_chain_topology
from repro.workloads.scenarios import reference_scenario
from tests.conftest import build_request
from tests.test_simulation import AcceptFirstNodePolicy, RejectAllPolicy


# --------------------------------------------------------------------------- #
# Helpers
# --------------------------------------------------------------------------- #
def budgeted(policy, budget_s=0.05, latency_s=0.001):
    """A BudgetedPolicy with a fixed deterministic latency model."""
    return BudgetedPolicy(
        policy, budget_s=budget_s, latency_model=lambda request: latency_s
    )


def make_requests(catalog, times, holding=30.0, source=0):
    return [
        build_request(catalog, arrival=t, holding=holding, source=source)
        for t in times
    ]


class FixedChaos:
    """Chaos stub replaying a fixed schedule (duck-types DomainFailureInjector)."""

    def __init__(self, events):
        self._events = list(events)

    def schedule(self, network, horizon):
        return [event for event in self._events if event.time <= horizon]


# --------------------------------------------------------------------------- #
# BudgetedPolicy
# --------------------------------------------------------------------------- #
class TestBudgetedPolicy:
    def test_under_budget_keeps_placement_and_charges_elapsed(self, catalog):
        network = linear_chain_topology(num_edge_nodes=3, seed=0)
        tier = budgeted(AcceptFirstNodePolicy(0), budget_s=0.05, latency_s=0.01)
        outcome = tier.decide(build_request(catalog), network)
        assert not outcome.timed_out
        assert outcome.placement is not None
        assert outcome.elapsed_s == pytest.approx(0.01)
        assert outcome.charged_s == pytest.approx(0.01)
        assert tier.calls == 1 and tier.timeouts == 0

    def test_over_budget_preempts_and_caps_charge(self, catalog):
        network = linear_chain_topology(num_edge_nodes=3, seed=0)
        tier = budgeted(AcceptFirstNodePolicy(0), budget_s=0.05, latency_s=0.2)
        outcome = tier.decide(build_request(catalog), network)
        assert outcome.timed_out
        assert outcome.placement is None, "late answer must be discarded"
        assert outcome.elapsed_s == pytest.approx(0.2)
        assert outcome.charged_s == pytest.approx(0.05), "charge capped at budget"
        assert tier.timeouts == 1 and tier.timeout_ratio == 1.0

    def test_measured_clock_path(self, catalog):
        network = linear_chain_topology(num_edge_nodes=3, seed=0)
        ticks = iter([0.0, 0.004])
        tier = BudgetedPolicy(
            AcceptFirstNodePolicy(0), budget_s=0.05, clock=lambda: next(ticks)
        )
        outcome = tier.decide(build_request(catalog), network)
        assert outcome.elapsed_s == pytest.approx(0.004)
        assert not outcome.timed_out

    def test_reset_clears_counters(self, catalog):
        network = linear_chain_topology(num_edge_nodes=3, seed=0)
        tier = budgeted(AcceptFirstNodePolicy(0))
        tier.decide(build_request(catalog), network)
        tier.reset()
        assert tier.calls == 0 and tier.timeouts == 0
        assert tier.total_charged_s == 0.0

    def test_rejects_nonpositive_budget(self):
        with pytest.raises(ValueError):
            BudgetedPolicy(AcceptFirstNodePolicy(0), budget_s=0.0)


# --------------------------------------------------------------------------- #
# AdmissionController
# --------------------------------------------------------------------------- #
class TestAdmissionController:
    def test_token_bucket_depletes_and_refills(self):
        controller = AdmissionController(
            AdmissionConfig(
                tokens_per_second=1.0,
                bucket_capacity=2.0,
                queue_high_watermark=100,
                queue_low_watermark=1,
            )
        )
        assert controller.admit(0.0, 0)
        assert controller.admit(0.0, 0)
        assert not controller.admit(0.0, 0), "bucket empty at t=0"
        assert controller.shed_rate_limited == 1
        assert controller.admit(1.5, 0), "refilled after 1.5 virtual seconds"

    def test_queue_hysteresis_band(self):
        controller = AdmissionController(
            AdmissionConfig(
                tokens_per_second=1000.0,
                bucket_capacity=1000.0,
                queue_high_watermark=8,
                queue_low_watermark=2,
            )
        )
        assert controller.admit(0.0, 7)
        assert not controller.admit(0.0, 8), "high watermark starts shedding"
        assert not controller.admit(0.0, 5), "inside the band: still shedding"
        assert controller.shedding
        assert controller.admit(0.0, 2), "low watermark stops shedding"
        assert controller.shed_mode_entries == 1
        assert controller.shed_mode_exits == 1
        assert controller.shed == controller.shed_overload == 2

    def test_as_dict_and_reset(self):
        controller = AdmissionController()
        controller.admit(0.0, 0)
        snapshot = controller.as_dict()
        assert snapshot["admitted"] == 1 and snapshot["shed"] == 0
        controller.reset()
        assert controller.admitted == 0 and not controller.shedding

    def test_watermark_band_must_exist(self):
        with pytest.raises(ValueError, match="hysteresis band"):
            AdmissionConfig(queue_high_watermark=4, queue_low_watermark=4)


# --------------------------------------------------------------------------- #
# StreamingHistogram / BoundedTrajectory
# --------------------------------------------------------------------------- #
class TestStreamingHistogram:
    def test_quantiles_bounded_by_bin_resolution(self):
        histogram = StreamingHistogram(lo=1e-6, hi=100.0, bins_per_decade=20)
        for _ in range(1000):
            histogram.record(0.01)
        # Bin upper edge overshoots by at most one bin width: 10**(1/20).
        overshoot = 10 ** (1 / 20)
        for q in (0.5, 0.99):
            assert 0.01 <= histogram.quantile(q) <= 0.01 * overshoot * 1.001

    def test_mean_and_max_are_exact(self):
        histogram = StreamingHistogram()
        for value in (0.01, 0.02, 0.06):
            histogram.record(value)
        assert histogram.mean == pytest.approx(0.03)
        assert histogram.max == pytest.approx(0.06)
        assert len(histogram) == 3

    def test_empty_histogram(self):
        histogram = StreamingHistogram()
        assert histogram.quantile(0.99) == 0.0
        assert histogram.mean == 0.0
        assert histogram.as_dict()["count"] == 0

    def test_clamps_out_of_range(self):
        histogram = StreamingHistogram(lo=1e-3, hi=1.0)
        histogram.record(0.0)
        histogram.record(50.0)
        assert len(histogram) == 2
        assert histogram.max == pytest.approx(50.0)

    def test_quantile_validation(self):
        with pytest.raises(ValueError):
            StreamingHistogram().quantile(1.5)


class TestBoundedTrajectory:
    def test_memory_bounded_by_decimation(self):
        trajectory = BoundedTrajectory(max_points=16)
        for i in range(10_000):
            trajectory.offer(float(i), float(i))
        data = trajectory.as_dict()
        assert len(data["t"]) <= 16
        assert data["t"] == sorted(data["t"])
        # The sketch still spans the full horizon, start included.
        assert data["t"][0] == 0.0
        assert data["t"][-1] >= 10_000 / 2

    def test_small_series_kept_verbatim(self):
        trajectory = BoundedTrajectory(max_points=512)
        for i in range(5):
            trajectory.offer(float(i), float(i * 2))
        assert trajectory.as_dict() == {
            "t": [0.0, 1.0, 2.0, 3.0, 4.0],
            "v": [0.0, 2.0, 4.0, 6.0, 8.0],
        }


# --------------------------------------------------------------------------- #
# FallbackChain
# --------------------------------------------------------------------------- #
class TestFallbackChain:
    def test_validation(self):
        with pytest.raises(ValueError):
            FallbackChain([])
        with pytest.raises(TypeError):
            FallbackChain([GreedyNearestPolicy()])

    def test_fall_through_on_timeout_charges_both_tiers(self, catalog):
        network = linear_chain_topology(num_edge_nodes=3, seed=0)
        slow = budgeted(AcceptFirstNodePolicy(0), budget_s=0.05, latency_s=0.2)
        fast = budgeted(AcceptFirstNodePolicy(1), budget_s=0.02, latency_s=0.005)
        chain = FallbackChain([slow, fast])
        decision = chain.decide(build_request(catalog), network)
        assert decision.tier_index == 1
        assert decision.placement is not None
        # Charged latency accumulates: capped tier-0 budget + tier-1 elapsed.
        assert decision.charged_s == pytest.approx(0.05 + 0.005)
        assert chain.timeouts[chain.tier_names[0]] == 1
        assert chain.wins[chain.tier_names[1]] == 1
        assert chain.total_budget_s == pytest.approx(0.07)

    def test_all_tiers_decline(self, catalog):
        network = linear_chain_topology(num_edge_nodes=3, seed=0)
        chain = FallbackChain([budgeted(RejectAllPolicy())])
        decision = chain.decide(build_request(catalog), network)
        assert decision.placement is None and decision.tier_index is None
        assert chain.rejections[chain.tier_names[0]] == 1

    def test_charged_latency_never_exceeds_total_budget(self, catalog):
        network = linear_chain_topology(num_edge_nodes=3, seed=0)
        tiers = [
            budgeted(RejectAllPolicy(), budget_s=0.03, latency_s=9.9),
            budgeted(RejectAllPolicy(), budget_s=0.01, latency_s=9.9),
        ]
        chain = FallbackChain(tiers)
        decision = chain.decide(build_request(catalog), network)
        assert decision.charged_s <= chain.total_budget_s + 1e-12


# --------------------------------------------------------------------------- #
# OnlinePlacementService
# --------------------------------------------------------------------------- #
class TestOnlinePlacementService:
    def make_service(self, config=None, chaos=None, tiers=None):
        network = linear_chain_topology(num_edge_nodes=4, seed=0)
        chain = FallbackChain(
            tiers or [budgeted(AcceptFirstNodePolicy(0), latency_s=0.001)]
        )
        return OnlinePlacementService(
            network,
            chain,
            config
            or ServingConfig(
                horizon=100.0,
                decision_time_scale=1.0,
                monitoring_interval=10.0,
                admission=AdmissionConfig(
                    tokens_per_second=100.0,
                    bucket_capacity=100.0,
                    queue_high_watermark=8,
                    queue_low_watermark=2,
                ),
            ),
            chaos=chaos,
        )

    def test_accept_and_release_conserves_capacity(self, catalog):
        service = self.make_service()
        # Spaced arrivals: each chain departs before the next arrives, so
        # node-0 capacity is never the binding constraint.
        requests = make_requests(catalog, times=[1.0, 10.0, 20.0], holding=5.0)
        report = service.run(requests)
        assert report.arrivals == 3
        assert report.accepted == 3
        assert report.shed == 0 and report.rejected == 0
        assert not service._active, "all placements released at departure"
        node = service.network.node(0)
        assert node.available.as_array() == pytest.approx(
            node._capacity_arr
        ), "capacity fully restored after departures"

    def test_rejection_accounted_separately_from_shed(self, catalog):
        service = self.make_service(tiers=[budgeted(RejectAllPolicy())])
        report = service.run(make_requests(catalog, times=[1.0, 2.0]))
        assert report.rejected == 2 and report.shed == 0 and report.accepted == 0

    def test_overload_sheds_and_bounds_queue(self, catalog):
        # Each decision occupies the server for 1.0 virtual seconds while
        # arrivals come every 0.01s: the queue hits the high watermark and
        # admission must shed the excess.
        config = ServingConfig(
            horizon=100.0,
            decision_time_scale=100.0,  # 0.01 s charged -> 1.0 virtual seconds
            monitoring_interval=10.0,
            admission=AdmissionConfig(
                tokens_per_second=1000.0,
                bucket_capacity=1000.0,
                queue_high_watermark=4,
                queue_low_watermark=1,
            ),
        )
        service = self.make_service(
            config=config,
            tiers=[budgeted(AcceptFirstNodePolicy(0), latency_s=0.01, budget_s=0.05)],
        )
        times = [0.01 * i for i in range(1, 61)]
        report = service.run(make_requests(catalog, times=times, holding=1000.0))
        assert report.shed > 0
        assert report.max_queue_depth <= 4
        assert report.admission["shed_mode_entries"] >= 1
        assert report.arrivals == report.shed + report.accepted + report.rejected

    def test_decision_latency_recorded_and_bounded(self, catalog):
        service = self.make_service()
        report = service.run(make_requests(catalog, times=[1.0, 2.0]))
        stats = report.decision_latency.as_dict()
        assert stats["count"] == 2
        assert stats["max"] <= service.chain.total_budget_s

    def test_node_failure_disrupts_and_retry_replaces(self, catalog):
        # Tier 0 places on node 0, which fails at t=5; the retry (t=7, after
        # retry_base_delay=2) falls through to tier 1 and lands on node 1.
        chaos = FixedChaos([ChaosEvent(time=5.0, kind="node_failure", node_id=0)])
        tiers = [
            budgeted(AcceptFirstNodePolicy(0), latency_s=0.001),
            budgeted(AcceptFirstNodePolicy(1), latency_s=0.001),
        ]
        service = self.make_service(chaos=chaos, tiers=tiers)
        report = service.run(make_requests(catalog, times=[1.0], holding=50.0))
        assert report.accepted == 1
        assert report.disrupted == 1
        assert report.replaced == 1
        assert report.lost == 0 and report.expired == 0
        # The re-placement's departure still fires and releases capacity.
        node = service.network.node(1)
        assert node.available.as_array() == pytest.approx(node._capacity_arr)

    def test_retry_budget_exhaustion_declares_lost(self, catalog):
        # The only placement target fails and never recovers: retries back
        # off exponentially and the chain is declared lost.
        chaos = FixedChaos([ChaosEvent(time=5.0, kind="node_failure", node_id=0)])
        service = self.make_service(chaos=chaos)
        report = service.run(make_requests(catalog, times=[1.0], holding=500.0))
        assert report.disrupted == 1
        assert report.lost == 1
        assert report.replaced == 0
        assert report.retry_attempts == service.config.retry_max_attempts

    def test_retry_after_departure_time_expires(self, catalog):
        # Disruption right before the chain would have departed: the first
        # retry fires after departure_time and must be accounted as expired.
        chaos = FixedChaos([ChaosEvent(time=5.5, kind="node_failure", node_id=0)])
        service = self.make_service(chaos=chaos)
        report = service.run(make_requests(catalog, times=[1.0], holding=5.0))
        assert report.disrupted == 1
        assert report.expired == 1
        assert report.lost == 0 and report.replaced == 0

    def test_disruption_taxonomy_closes(self, catalog):
        chaos = FixedChaos(
            [
                ChaosEvent(time=4.0, kind="node_failure", node_id=0),
                ChaosEvent(time=20.0, kind="node_recovery", node_id=0),
            ]
        )
        tiers = [
            budgeted(AcceptFirstNodePolicy(0), latency_s=0.001),
            budgeted(AcceptFirstNodePolicy(1), latency_s=0.001),
        ]
        service = self.make_service(chaos=chaos, tiers=tiers)
        report = service.run(
            make_requests(catalog, times=[1.0, 2.0, 3.0], holding=40.0)
        )
        assert report.disrupted == report.replaced + report.lost + report.expired

    def test_run_is_repeatable(self, catalog):
        service = self.make_service()
        times = [1.0, 2.0, 3.0]
        first = service.run(make_requests(catalog, times=times)).as_dict()
        second = service.run(make_requests(catalog, times=times)).as_dict()
        assert first == second

    def test_report_as_dict_schema(self, catalog):
        service = self.make_service()
        report = service.run(make_requests(catalog, times=[1.0]))
        data = report.as_dict()
        for key in (
            "arrivals",
            "shed",
            "accepted",
            "rejected",
            "commit_failed",
            "disrupted",
            "replaced",
            "lost",
            "expired",
            "tier_wins",
            "decision_latency_s",
            "trajectories",
            "admission",
        ):
            assert key in data
        assert set(data["trajectories"]) == {
            "queue_depth",
            "shed_rate",
            "sla_violation_rate",
        }


# --------------------------------------------------------------------------- #
# Runner integration
# --------------------------------------------------------------------------- #
class TestServingSoakRunner:
    def test_run_serving_soak_with_chaos(self):
        scenario = reference_scenario(
            arrival_rate=0.5, num_edge_nodes=8, horizon=120.0, seed=7
        )
        chain = FallbackChain(
            [
                budgeted(GreedyLeastLoadedPolicy(), latency_s=0.002),
                budgeted(GreedyNearestPolicy(), latency_s=0.001),
            ]
        )
        config = ServingConfig(horizon=120.0, monitoring_interval=20.0)
        report = run_serving_soak(
            scenario,
            chain,
            config,
            domain_config=DomainFailureConfig(
                mean_time_to_failure=60.0, mean_time_to_repair=15.0, seed=3
            ),
        )
        assert report.arrivals > 0
        assert report.accepted > 0
        assert report.disrupted == report.replaced + report.lost + report.expired
        assert report.horizon == 120.0

    def test_iter_requests_matches_generate_requests(self):
        scenario = reference_scenario(
            arrival_rate=0.5, num_edge_nodes=8, horizon=60.0, seed=7
        )
        eager = scenario.generate_requests()
        lazy = list(scenario.iter_requests())
        assert len(eager) == len(lazy)
        for a, b in zip(eager, lazy):
            assert a.arrival_time == b.arrival_time
            assert a.source_node_id == b.source_node_id
            assert a.chain.bandwidth_mbps == b.chain.bandwidth_mbps
