"""Unit tests for activations, losses and dense layers."""

import numpy as np
import pytest

from repro.nn.activations import (
    LeakyReLU,
    ReLU,
    Sigmoid,
    Tanh,
    get_activation,
    log_softmax,
    softmax,
)
from repro.nn.layers import DenseLayer
from repro.nn.losses import HuberLoss, MSELoss, get_loss


class TestActivations:
    def test_relu_forward_and_derivative(self):
        relu = ReLU()
        z = np.array([-2.0, 0.0, 3.0])
        assert np.allclose(relu.forward(z), [0.0, 0.0, 3.0])
        assert np.allclose(relu.derivative(z), [0.0, 0.0, 1.0])

    def test_leaky_relu_negative_slope(self):
        leaky = LeakyReLU(negative_slope=0.1)
        z = np.array([-10.0, 10.0])
        assert np.allclose(leaky.forward(z), [-1.0, 10.0])
        assert np.allclose(leaky.derivative(z), [0.1, 1.0])

    def test_tanh_bounded(self):
        z = np.linspace(-5, 5, 11)
        out = Tanh().forward(z)
        assert np.all(np.abs(out) <= 1.0)

    def test_sigmoid_stable_for_large_inputs(self):
        sigmoid = Sigmoid()
        out = sigmoid.forward(np.array([-1000.0, 0.0, 1000.0]))
        assert np.allclose(out, [0.0, 0.5, 1.0], atol=1e-9)
        assert np.all(np.isfinite(sigmoid.derivative(np.array([-1000.0, 1000.0]))))

    def test_get_activation_by_name(self):
        assert isinstance(get_activation("relu"), ReLU)
        assert isinstance(get_activation("TANH"), Tanh)
        with pytest.raises(ValueError):
            get_activation("swishish")

    def test_softmax_sums_to_one(self):
        probabilities = softmax(np.array([[1.0, 2.0, 3.0], [10.0, 10.0, 10.0]]))
        assert np.allclose(probabilities.sum(axis=1), 1.0)
        assert probabilities[1, 0] == pytest.approx(1 / 3)

    def test_softmax_stable_for_large_logits(self):
        probabilities = softmax(np.array([1000.0, 1000.0]))
        assert np.allclose(probabilities, [0.5, 0.5])

    def test_log_softmax_consistent_with_softmax(self):
        logits = np.array([0.5, -1.0, 2.0])
        assert np.allclose(np.exp(log_softmax(logits)), softmax(logits))


class TestLosses:
    def test_mse_value(self):
        loss = MSELoss()
        value = loss(np.array([[1.0, 2.0]]), np.array([[0.0, 0.0]]))
        assert value == pytest.approx((1.0 + 4.0) / 2)

    def test_mse_gradient_matches_numerical(self):
        loss = MSELoss()
        rng = np.random.default_rng(0)
        predictions = rng.normal(size=(4, 3))
        targets = rng.normal(size=(4, 3))
        _, grad = loss.value_and_grad(predictions, targets)
        eps = 1e-6
        numerical = np.zeros_like(predictions)
        for i in range(predictions.shape[0]):
            for j in range(predictions.shape[1]):
                plus = predictions.copy()
                plus[i, j] += eps
                minus = predictions.copy()
                minus[i, j] -= eps
                numerical[i, j] = (loss(plus, targets) - loss(minus, targets)) / (2 * eps)
        assert np.allclose(grad, numerical, atol=1e-6)

    def test_huber_quadratic_then_linear(self):
        loss = HuberLoss(delta=1.0)
        small = loss(np.array([[0.5]]), np.array([[0.0]]))
        large = loss(np.array([[10.0]]), np.array([[0.0]]))
        assert small == pytest.approx(0.125)
        assert large == pytest.approx(0.5 + 1.0 * 9.0)

    def test_huber_gradient_clipped(self):
        loss = HuberLoss(delta=1.0)
        _, grad = loss.value_and_grad(np.array([[10.0]]), np.array([[0.0]]))
        assert abs(grad[0, 0]) <= 1.0

    def test_weighted_loss_scales_gradient(self):
        loss = MSELoss()
        predictions = np.array([[1.0], [1.0]])
        targets = np.array([[0.0], [0.0]])
        _, grad_unweighted = loss.value_and_grad(predictions, targets)
        _, grad_weighted = loss.value_and_grad(
            predictions, targets, weights=np.array([2.0, 0.5])
        )
        assert grad_weighted[0, 0] == pytest.approx(2.0 * grad_unweighted[0, 0])
        assert grad_weighted[1, 0] == pytest.approx(0.5 * grad_unweighted[1, 0])

    def test_get_loss_factory(self):
        assert isinstance(get_loss("mse"), MSELoss)
        assert isinstance(get_loss("huber", delta=2.0), HuberLoss)
        with pytest.raises(ValueError):
            get_loss("hinge")

    def test_invalid_huber_delta(self):
        with pytest.raises(ValueError):
            HuberLoss(delta=0.0)


class TestDenseLayer:
    def test_forward_shape(self):
        layer = DenseLayer(4, 3, activation="relu", seed=0)
        out = layer.forward(np.ones((5, 4)))
        assert out.shape == (5, 3)

    def test_forward_rejects_wrong_width(self):
        layer = DenseLayer(4, 3, seed=0)
        with pytest.raises(ValueError):
            layer.forward(np.ones((2, 5)))

    def test_identity_layer_is_affine(self):
        layer = DenseLayer(2, 2, activation=None, seed=0)
        layer.set_parameters({"weights": np.eye(2), "biases": np.array([1.0, -1.0])})
        out = layer.forward(np.array([[3.0, 4.0]]))
        assert np.allclose(out, [[4.0, 3.0]])

    def test_backward_before_forward_raises(self):
        layer = DenseLayer(2, 2, seed=0)
        with pytest.raises(RuntimeError):
            layer.backward(np.ones((1, 2)))

    def test_gradient_numerically_correct(self):
        rng = np.random.default_rng(1)
        layer = DenseLayer(3, 2, activation="tanh", seed=1)
        x = rng.normal(size=(4, 3))
        target = rng.normal(size=(4, 2))
        loss = MSELoss()

        def compute_loss():
            return loss(layer.forward(x, training=False), target)

        predictions = layer.forward(x, training=True)
        _, grad_out = loss.value_and_grad(predictions, target)
        layer.zero_grad()
        layer.backward(grad_out)

        eps = 1e-6
        numerical = np.zeros_like(layer.weights)
        for i in range(layer.weights.shape[0]):
            for j in range(layer.weights.shape[1]):
                original = layer.weights[i, j]
                layer.weights[i, j] = original + eps
                plus = compute_loss()
                layer.weights[i, j] = original - eps
                minus = compute_loss()
                layer.weights[i, j] = original
                numerical[i, j] = (plus - minus) / (2 * eps)
        assert np.allclose(layer.weight_grad, numerical, atol=1e-5)

    def test_set_parameters_shape_check(self):
        layer = DenseLayer(3, 2, seed=0)
        with pytest.raises(ValueError):
            layer.set_parameters({"weights": np.zeros((2, 2)), "biases": np.zeros(2)})

    def test_parameter_count(self):
        layer = DenseLayer(3, 2, seed=0)
        assert layer.parameter_count() == 3 * 2 + 2

    def test_invalid_dimensions_rejected(self):
        with pytest.raises(ValueError):
            DenseLayer(0, 2)
