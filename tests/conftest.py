"""Shared fixtures for the test suite."""

from __future__ import annotations

import pytest

from repro.nfv.catalog import default_catalog, default_chain_templates
from repro.nfv.sfc import SFCRequest, ServiceFunctionChain
from repro.nfv.sla import ServiceLevelAgreement
from repro.substrate.geo import GeoPoint
from repro.substrate.network import SubstrateNetwork
from repro.substrate.node import ComputeNode, NodeTier, make_cloud_node
from repro.substrate.resources import ResourceVector
from repro.substrate.topology import (
    TopologyConfig,
    linear_chain_topology,
    metro_edge_cloud_topology,
)
from repro.workloads.generator import RequestGenerator, WorkloadConfig


@pytest.fixture
def catalog():
    """The default VNF catalog."""
    return default_catalog()


@pytest.fixture
def templates():
    """The default chain templates."""
    return default_chain_templates()


@pytest.fixture
def small_network():
    """A deterministic 4-node chain topology with uniform 2 ms links."""
    return linear_chain_topology(num_edge_nodes=4, link_latency_ms=2.0, seed=7)


@pytest.fixture
def edge_cloud_network():
    """A small metro/cloud topology (8 edges, 1 cloud) used in integration tests."""
    return metro_edge_cloud_topology(TopologyConfig(num_edge_nodes=8, seed=3))


@pytest.fixture
def tiny_edge_cloud_network():
    """A hand-built 2-edge + 1-cloud network with exactly known latencies."""
    network = SubstrateNetwork()
    edge_capacity = ResourceVector(10.0, 20.0, 100.0)
    network.add_node(
        ComputeNode(0, GeoPoint(40.0, -74.0), edge_capacity, NodeTier.EDGE, name="e0")
    )
    network.add_node(
        ComputeNode(1, GeoPoint(40.1, -74.1), edge_capacity, NodeTier.EDGE, name="e1")
    )
    network.add_node(make_cloud_node(2, GeoPoint(39.0, -104.0), name="cloud"))
    network.add_link(0, 1, bandwidth_capacity=1000.0, latency_ms=2.0)
    network.add_link(1, 2, bandwidth_capacity=10000.0, latency_ms=30.0)
    return network


def build_request(
    catalog,
    vnf_names=("firewall", "nat"),
    bandwidth=50.0,
    source=0,
    sla_ms=60.0,
    holding=30.0,
    arrival=0.0,
):
    """Construct an SFCRequest with explicit parameters (test helper)."""
    chain = ServiceFunctionChain(
        vnf_types=tuple(catalog.get(name) for name in vnf_names),
        bandwidth_mbps=bandwidth,
        service_class="test",
    )
    return SFCRequest(
        chain=chain,
        source_node_id=source,
        sla=ServiceLevelAgreement(max_latency_ms=sla_ms),
        arrival_time=arrival,
        holding_time=holding,
    )


@pytest.fixture
def request_factory(catalog):
    """Factory fixture building requests against the default catalog."""

    def _factory(**kwargs):
        return build_request(catalog, **kwargs)

    return _factory


@pytest.fixture
def generator(edge_cloud_network, catalog, templates):
    """A seeded request generator over the edge/cloud fixture network."""
    return RequestGenerator(
        network=edge_cloud_network,
        catalog=catalog,
        templates=templates,
        config=WorkloadConfig(arrival_rate=0.5, horizon=100.0, seed=11),
    )
